"""Reporter round-trips: text lines, JSON schema, rule docs."""

import io
import json

from repro.analysis.lint import lint_source
from repro.analysis.report import (
    REPORT_SCHEMA_VERSION,
    render_json,
    render_rules,
    render_text,
    write_json,
)
from repro.analysis.rules import RULES

BAD = "def f(xs=[]):\n    return xs\n"


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        result = lint_source(BAD, "pkg/mod.py")
        text = render_text(result)
        assert "pkg/mod.py:1:" in text
        assert "REP006" in text
        assert "1 error(s)" in text

    def test_clean_text_report(self):
        result = lint_source("x = 1\n", "pkg/mod.py")
        text = render_text(result)
        assert "0 error(s), 0 warning(s)" in text

    def test_json_report_schema(self):
        result = lint_source(BAD, "pkg/mod.py")
        doc = render_json(result)
        assert doc["schema"] == REPORT_SCHEMA_VERSION
        assert doc["ok"] is False
        assert doc["errors"] == 1 and doc["warnings"] == 0
        assert doc["counts"] == {"REP006": 1}
        (finding,) = doc["findings"]
        assert finding["rule"] == "REP006"
        assert finding["path"] == "pkg/mod.py"
        # must survive a JSON round-trip (CI uploads this as an artifact)
        assert json.loads(json.dumps(doc)) == doc

    def test_write_json(self):
        buf = io.StringIO()
        write_json(lint_source(BAD, "m.py"), buf)
        assert json.loads(buf.getvalue())["errors"] == 1

    def test_rule_docs_cover_every_rule(self):
        listing = render_rules()
        for rule_id, rule in RULES.items():
            assert rule_id in listing
            assert rule.summary in listing
        detail = render_rules("REP005")
        assert "REP005" in detail and RULES["REP005"].rationale in detail
