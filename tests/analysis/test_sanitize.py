"""Unit tests for the determinism sanitizer's diffing machinery.

The actual double-subprocess check lives in
tests/integration/test_hashseed_determinism.py; here we exercise the
fingerprint structure and the comparison logic with synthetic docs.
"""

import pytest

from repro.analysis.sanitize import (
    DEFAULT_HASH_SEEDS,
    campaign_fingerprint,
    compare_fingerprints,
    format_sanitize,
    run_sanitize,
)


def make_doc(events, trace="t" * 64, metrics="m" * 64, spans="s" * 64,
             timeline=None, **extra):
    doc = {
        "schema": 3,
        "mode": "smoke",
        "version": "coop",
        "fault": "node_crash",
        "seed": 7,
        "python_hash_seed": "101",
        "n_events": len(events),
        "events": events,
        "trace_digest": trace,
        "metrics_digest": metrics,
        "spans_digest": spans,
        "n_spans": 4,
        "timeline": timeline or {"issued": 10},
        "digest": "d" * 64,
    }
    doc.update(extra)
    return doc


EVS = [{"i": 0, "t": 1.0, "kind": "req_issue", "h": "aaaaaaaaaaaa"},
       {"i": 1, "t": 2.0, "kind": "req_done", "h": "bbbbbbbbbbbb"}]


class TestCompare:
    def test_identical_fingerprints_match(self):
        result = compare_fingerprints(make_doc(EVS), make_doc(EVS),
                                      DEFAULT_HASH_SEEDS)
        assert result.ok
        assert result.divergence is None
        assert result.trace_match and result.metrics_match
        assert result.timeline_match

    def test_first_divergence_located(self):
        evs_b = [EVS[0], {"i": 1, "t": 2.0, "kind": "req_done",
                          "h": "cccccccccccc"}]
        result = compare_fingerprints(
            make_doc(EVS), make_doc(evs_b, trace="u" * 64),
            DEFAULT_HASH_SEEDS)
        assert not result.ok and not result.trace_match
        assert result.divergence is not None
        assert result.divergence.index == 1
        assert result.divergence.a["h"] == "bbbbbbbbbbbb"
        assert result.divergence.b["h"] == "cccccccccccc"
        assert "first divergence at index 1" in result.divergence.describe()

    def test_truncated_stream_divergence(self):
        result = compare_fingerprints(
            make_doc(EVS), make_doc(EVS[:1], trace="u" * 64),
            DEFAULT_HASH_SEEDS)
        assert result.divergence.index == 1
        assert result.divergence.b is None
        assert "<stream ended>" in result.divergence.describe()

    def test_metrics_only_divergence(self):
        result = compare_fingerprints(
            make_doc(EVS), make_doc(EVS, metrics="x" * 64),
            DEFAULT_HASH_SEEDS)
        assert not result.ok
        assert result.trace_match and not result.metrics_match
        assert result.divergence is None

    def test_spans_only_divergence(self):
        result = compare_fingerprints(
            make_doc(EVS), make_doc(EVS, spans="x" * 64),
            DEFAULT_HASH_SEEDS)
        assert not result.ok
        assert result.trace_match and not result.spans_match
        assert "span digests:    DIVERGE" in format_sanitize(result)

    def test_schema1_docs_without_spans_still_compare(self):
        a, b = make_doc(EVS), make_doc(EVS)
        for doc in (a, b):
            doc.pop("spans_digest")
            doc["schema"] = 1
        result = compare_fingerprints(a, b, DEFAULT_HASH_SEEDS)
        assert result.ok and result.spans_match

    def test_to_dict_strips_event_streams(self):
        result = compare_fingerprints(make_doc(EVS), make_doc(EVS),
                                      DEFAULT_HASH_SEEDS)
        doc = result.to_dict()
        assert doc["ok"] is True
        assert all("events" not in run for run in doc["runs"])
        assert doc["hash_seeds"] == list(DEFAULT_HASH_SEEDS)

    def test_format_renders_verdict(self):
        ok = compare_fingerprints(make_doc(EVS), make_doc(EVS),
                                  DEFAULT_HASH_SEEDS)
        assert "OK: bit-reproducible" in format_sanitize(ok)
        bad = compare_fingerprints(
            make_doc(EVS), make_doc(EVS, metrics="x" * 64),
            DEFAULT_HASH_SEEDS)
        assert "FAIL" in format_sanitize(bad)
        assert "DIVERGE" in format_sanitize(bad)


class TestRunSanitize:
    def test_equal_hash_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_sanitize(hash_seeds=(5, 5))


class TestFingerprint:
    def test_smoke_fingerprint_shape_and_stability(self):
        a = campaign_fingerprint("coop", "node_crash", seed=3, smoke=True)
        b = campaign_fingerprint("coop", "node_crash", seed=3, smoke=True)
        assert a["schema"] == 3 and a["mode"] == "smoke"
        assert a["n_events"] == len(a["events"]) > 0
        assert a["n_spans"] > 0  # span tracing rides along
        # in-process, same hash seed: must be bit-identical
        assert a["trace_digest"] == b["trace_digest"]
        assert a["metrics_digest"] == b["metrics_digest"]
        assert a["spans_digest"] == b["spans_digest"]
        assert a["timeline"] == b["timeline"]
        # different master seed must move the digest
        c = campaign_fingerprint("coop", "node_crash", seed=4, smoke=True)
        assert c["trace_digest"] != a["trace_digest"]

    def test_fingerprint_is_json_safe(self):
        import json

        doc = campaign_fingerprint("coop", "node_crash", seed=1, smoke=True)
        round_tripped = json.loads(json.dumps(doc))
        assert round_tripped["trace_digest"] == doc["trace_digest"]
