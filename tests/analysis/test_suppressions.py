"""Suppression parsing edge cases and the REP016 unused-suppression
audit (``repro lint``'s stale-comment detector)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import (
    _suppressions,
    audit_suppressions,
    lint_source,
)

REPO = Path(__file__).parent.parent.parent


class TestSuppressionParsing:
    def test_comma_separated_ids(self):
        sup = _suppressions("x = 1  # reprolint: disable=REP001,REP006\n")
        assert sup == {1: {"REP001", "REP006"}}

    def test_space_separated_ids(self):
        sup = _suppressions("x = 1  # reprolint: disable=REP001 REP006\n")
        assert sup == {1: {"REP001", "REP006"}}

    def test_mixed_commas_and_spaces(self):
        sup = _suppressions(
            "x = 1  # reprolint: disable=REP001, REP006 REP013\n")
        assert sup == {1: {"REP001", "REP006", "REP013"}}

    def test_unknown_ids_are_still_parsed(self):
        # parsing is syntactic; the audit decides what ids mean
        sup = _suppressions("x = 1  # reprolint: disable=REP999,BOGUS\n")
        assert sup == {1: {"REP999", "BOGUS"}}

    def test_ids_are_case_normalised(self):
        sup = _suppressions("x = 1  # reprolint: disable=rep001,All\n")
        assert sup == {1: {"REP001", "ALL"}}

    def test_justification_prose_after_dashes_is_not_an_id(self):
        sup = _suppressions(
            "x = 1  # reprolint: disable=REP014 -- writers are disjoint\n")
        assert sup == {1: {"REP014"}}

    def test_docstring_example_is_not_a_suppression(self):
        src = ('"""Suppress with ``# reprolint: disable=REP001`` on the '
               'line."""\nx = 1\n')
        assert _suppressions(src) == {}

    def test_multiline_string_example_is_not_a_suppression(self):
        src = 'doc = """\n# reprolint: disable=REP001\n"""\n'
        assert _suppressions(src) == {}

    def test_real_comment_after_code_counts(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # reprolint: disable=REP001\n"
        result = lint_source(src, "sim/x.py", is_sim=True)
        assert result.findings == []
        assert result.suppressed == 1
        assert result.used_suppressions == {"sim/x.py": {5: {"REP001"}}}
        assert result.declared_suppressions == {"sim/x.py": {5: {"REP001"}}}


class TestAuditSuppressions:
    def test_used_suppression_is_not_reported(self):
        findings = audit_suppressions(
            declared={"a.py": {3: {"REP001"}}},
            used={"a.py": {3: {"REP001"}}})
        assert findings == []

    def test_stale_suppression_is_reported(self):
        (f,) = audit_suppressions(declared={"a.py": {3: {"REP001"}}}, used={})
        assert f.rule == "REP016" and f.path == "a.py" and f.line == 3
        assert "REP001" in f.message

    def test_unknown_id_always_reported(self):
        for flow_ran in (False, True):
            (f,) = audit_suppressions(
                declared={"a.py": {3: {"REP999"}}}, used={},
                flow_ran=flow_ran)
            assert "unknown rule id 'REP999'" in f.message

    def test_flow_rule_skipped_without_flow_pass(self):
        declared = {"a.py": {3: {"REP008"}}}
        assert audit_suppressions(declared, {}, flow_ran=False) == []
        (f,) = audit_suppressions(declared, {}, flow_ran=True)
        assert "REP008" in f.message

    def test_disable_all_only_audited_under_flow(self):
        declared = {"a.py": {3: {"ALL"}}}
        assert audit_suppressions(declared, {}, flow_ran=False) == []
        (f,) = audit_suppressions(declared, {}, flow_ran=True)
        assert "disable=all" in f.message

    def test_perf_rule_skipped_without_perf_pass(self):
        declared = {"a.py": {3: {"REP018"}}}
        assert audit_suppressions(declared, {}, perf_ran=False) == []
        (f,) = audit_suppressions(declared, {}, perf_ran=True)
        assert "REP018" in f.message

    def test_perf_rule_not_audited_by_flow_alone(self):
        # --flow must not flag a perf suppression as stale (and vice versa)
        declared = {"a.py": {3: {"REP020"}}}
        assert audit_suppressions(declared, {}, flow_ran=True) == []
        declared = {"a.py": {4: {"REP008"}}}
        assert audit_suppressions(declared, {}, perf_ran=True) == []

    def test_disable_all_audited_under_perf(self):
        declared = {"a.py": {3: {"ALL"}}}
        (f,) = audit_suppressions(declared, {}, perf_ran=True)
        assert "disable=all" in f.message

    def test_disable_all_that_suppressed_something_is_kept(self):
        findings = audit_suppressions(
            declared={"a.py": {3: {"ALL"}}},
            used={"a.py": {3: {"ALL"}}}, flow_ran=True)
        assert findings == []

    def test_mixed_line_reports_only_the_stale_id(self):
        (f,) = audit_suppressions(
            declared={"a.py": {3: {"REP001", "REP006"}}},
            used={"a.py": {3: {"REP006"}}})
        assert "REP001" in f.message and "REP006" not in f.message


class TestAuditCli:
    def _lint(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True, cwd=REPO,
        )

    def test_stale_suppression_warns(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("x = 1  # reprolint: disable=REP006\n")
        proc = self._lint(str(f))
        assert proc.returncode == 0  # warning, not error
        assert "REP016" in proc.stdout
        strict = self._lint(str(f), "--strict")
        assert strict.returncode == 1

    def test_used_suppression_does_not_warn(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("def g(xs=[]):  # reprolint: disable=REP006\n"
                     "    return xs\n")
        proc = self._lint(str(f), "--strict")
        assert proc.returncode == 0, proc.stdout
        assert "REP016" not in proc.stdout

    def test_json_report_counts_audit(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("x = 1  # reprolint: disable=REP006,REP999\n")
        proc = self._lint(str(f), "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["schema"] == 4
        audit = doc["suppression_audit"]
        assert audit["declared"] == 2 and audit["unused"] == 2
