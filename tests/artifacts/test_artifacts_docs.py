"""ARTIFACTS.md must document every registry entry (and vice versa)."""

from __future__ import annotations

import re
from pathlib import Path

from repro.artifacts import REGISTRY

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACTS_MD = REPO_ROOT / "ARTIFACTS.md"


def _documented_names():
    text = ARTIFACTS_MD.read_text(encoding="utf-8")
    return set(re.findall(r"^### `([\w-]+)`$", text, flags=re.MULTILINE))


def test_every_registry_entry_is_documented():
    missing = set(REGISTRY) - _documented_names()
    assert not missing, (
        f"registry entries without an ARTIFACTS.md section: "
        f"{sorted(missing)} — add a '### `<name>`' section")


def test_no_phantom_documentation():
    phantom = _documented_names() - set(REGISTRY)
    assert not phantom, (
        f"ARTIFACTS.md documents unregistered artifacts: {sorted(phantom)}")


def test_registry_invariants():
    for name, artifact in REGISTRY.items():
        assert artifact.name == name
        assert artifact.kind in ("figure", "bench", "report"), name
        assert artifact.outputs, f"{name} declares no outputs"
        assert artifact.description, name
        # a baseline without a comparator (or vice versa) is half a gate
        assert (artifact.baseline is None) == (artifact.check is None) \
            or artifact.check is not None, name


def test_output_paths_do_not_collide():
    seen = {}
    for name, artifact in REGISTRY.items():
        for out in artifact.outputs:
            assert out not in seen, (
                f"{name} and {seen[out]} both declare output {out}")
            seen[out] = name
