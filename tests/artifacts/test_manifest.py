"""Manifest schema round-trip and digest-comparison semantics."""

from __future__ import annotations

import pytest

from repro.artifacts.manifest import (
    MANIFEST_SCHEMA,
    ArtifactRecord,
    Manifest,
    compare_deterministic,
    format_manifest,
    read_manifest,
    sha256_file,
    write_manifest,
)


def _record(name="table1", *, deterministic=True, status="ok",
            digest="a" * 64):
    rec = ArtifactRecord(name=name, description="d", kind="figure",
                         deterministic=deterministic, status=status)
    rec.outputs[f"figures/{name}.txt"] = {"sha256": digest, "bytes": 10}
    return rec


def _manifest(**records):
    m = Manifest(provenance={"git_sha": "deadbeef", "host": "t"},
                 mode="quick")
    for name, rec in records.items():
        m.artifacts[name] = rec
    return m


class TestRoundTrip:
    def test_schema_round_trip(self, tmp_path):
        m = _manifest(table1=_record())
        m.artifacts["table1"].drift = []
        m.checked = True
        path = write_manifest(m, tmp_path / "MANIFEST.json")
        back = read_manifest(path)
        assert back.to_dict() == m.to_dict()
        assert back.mode == "quick"
        assert back.checked is True
        assert back.artifacts["table1"].outputs == \
            m.artifacts["table1"].outputs

    def test_unknown_schema_rejected(self):
        doc = _manifest().to_dict()
        doc["schema"] = MANIFEST_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            Manifest.from_dict(doc)

    def test_summary_flags_failures_and_drift(self):
        ok = _record("a")
        failed = _record("b", status="failed")
        drifted = _record("c")
        drifted.drift = ["drifted"]
        m = _manifest(a=ok, b=failed, c=drifted)
        summary = m.summary()
        assert summary["ok"] is False
        assert summary["failed"] == ["b"]
        assert summary["drifted"] == ["c"]
        assert summary["generated"] == 2  # a and c regenerated fine

    def test_ok_manifest(self):
        m = _manifest(a=_record("a"))
        assert m.ok and m.summary()["ok"]


class TestCompareDeterministic:
    def test_identical_digests_clean(self):
        assert compare_deterministic(_manifest(a=_record("a")),
                                     _manifest(a=_record("a"))) == []

    def test_digest_change_reported(self):
        drift = compare_deterministic(
            _manifest(a=_record("a", digest="a" * 64)),
            _manifest(a=_record("a", digest="b" * 64)))
        assert len(drift) == 1 and "a" in drift[0]

    def test_host_dependent_artifacts_exempt(self):
        drift = compare_deterministic(
            _manifest(a=_record("a", deterministic=False, digest="a" * 64)),
            _manifest(a=_record("a", deterministic=False, digest="b" * 64)))
        assert drift == []

    def test_failed_artifacts_exempt(self):
        drift = compare_deterministic(
            _manifest(a=_record("a", status="failed", digest="a" * 64)),
            _manifest(a=_record("a", digest="b" * 64)))
        assert drift == []


def test_sha256_file(tmp_path):
    p = tmp_path / "x.bin"
    p.write_bytes(b"hello")
    digest, size = sha256_file(p)
    assert size == 5
    assert digest == ("2cf24dba5fb0a30e26e83b2ac5b9e29e"
                      "1b161e5c1fa7425e73043362938b9824")


def test_format_manifest_verdicts():
    m = _manifest(a=_record("a"))
    assert "PASSED" in format_manifest(m)
    m.artifacts["a"].drift = ["baseline moved"]
    text = format_manifest(m)
    assert "FAILED" in text and "baseline moved" in text
