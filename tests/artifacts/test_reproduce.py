"""Behavioral tests for ``repro reproduce-all``.

The expensive artifacts (bench documents, full figure set) run in the
CI ``reproduce`` job; here the runner's contracts are proven on cheap
registry entries (``table1`` regenerates in well under a second) and on
synthetic artifacts injected through the runner's selection seam.
"""

from __future__ import annotations

import json

import pytest

import repro.artifacts.runner as runner_mod
from repro.artifacts import (
    REGISTRY,
    Artifact,
    compare_deterministic,
    read_manifest,
    reproduce_all,
    select,
)
from repro.artifacts.registry import (
    ReproduceContext,
    ReproduceError,
    _check_availability,
)


class TestSelection:
    def test_default_selects_whole_registry(self):
        assert [a.name for a in select(None)] == list(REGISTRY)

    def test_glob_filtering(self):
        names = [a.name for a in select("fig*")]
        assert names == ["fig1a", "fig1b", "fig2", "fig4", "fig6",
                         "fig7", "fig8", "fig9", "fig10"]
        assert [a.name for a in select("bench-*")] == \
            ["bench-availability", "bench-kernel", "bench-parallel"]

    def test_no_match_is_an_error_naming_the_registry(self, tmp_path):
        with pytest.raises(ValueError, match="table1"):
            reproduce_all(only="no-such-artifact",
                          out_dir=tmp_path, manifest_path=tmp_path / "m.json")

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            reproduce_all(only="table1", jobs=0, out_dir=tmp_path,
                          manifest_path=tmp_path / "m.json")


class TestTable1EndToEnd:
    """The cheapest real registry entry, regenerated twice."""

    def _run(self, tmp_path, tag):
        out = tmp_path / tag
        return reproduce_all(only="table1", quick=True, out_dir=out,
                             manifest_path=out / "MANIFEST.json")

    def test_two_runs_are_byte_identical(self, tmp_path):
        first = self._run(tmp_path, "run1")
        second = self._run(tmp_path, "run2")
        assert first.ok and second.ok
        rec = first.artifacts["table1"]
        assert rec.status == "ok"
        assert set(rec.outputs) == {"figures/table1.txt",
                                    "figures/table1.csv"}
        # the digest-backed contract: same tree, same bytes
        assert compare_deterministic(first, second) == []
        assert rec.outputs == second.artifacts["table1"].outputs

    def test_manifest_written_with_provenance(self, tmp_path):
        manifest = self._run(tmp_path, "run")
        back = read_manifest(tmp_path / "run" / "MANIFEST.json")
        assert back.summary()["ok"] is True
        for key in ("git_sha", "git_dirty", "host", "python", "cpu_count",
                    "timestamp"):
            assert key in back.provenance, key
        assert back.mode == "quick"
        assert back.artifacts["table1"].wall_seconds >= 0.0
        assert back.to_dict()["summary"] == manifest.summary()


def _synthetic(name, generate, check=None, baseline=None,
               outputs=("out.json",)):
    return Artifact(name=name, description=f"synthetic {name}",
                    kind="report", generate=generate, outputs=outputs,
                    deterministic=True, baseline=baseline, check=check)


class TestRunnerContracts:
    """Synthetic artifacts through the real runner."""

    def _patch_registry(self, monkeypatch, artifacts):
        monkeypatch.setattr(runner_mod, "select",
                            lambda only=None: list(artifacts))

    def test_check_detects_mutated_baseline(self, tmp_path, monkeypatch):
        """The ISSUE's drift scenario: the committed baseline moved."""
        baseline_root = tmp_path / "tree"
        (baseline_root / "benchmarks").mkdir(parents=True)
        (baseline_root / "benchmarks" / "BENCH_fake.json").write_text(
            json.dumps({"value": 1.0}))

        def generate(ctx):
            (ctx.out_dir / "out.json").write_text(json.dumps({"value": 1.0}))
            return {}

        def check(ctx, artifact):
            current = json.loads((ctx.out_dir / "out.json").read_text())
            base = json.loads(ctx.baseline_path(artifact.baseline)
                              .read_text())
            if current["value"] != base["value"]:
                return [f"value {current['value']} != {base['value']}"]
            return []

        art = _synthetic("fake", generate, check=check,
                         baseline="benchmarks/BENCH_fake.json")
        self._patch_registry(monkeypatch, [art])

        clean = reproduce_all(check=True, out_dir=tmp_path / "o1",
                              manifest_path=tmp_path / "m1.json",
                              baseline_root=baseline_root)
        assert clean.ok and clean.artifacts["fake"].drift == []

        # mutate the committed baseline: now the same regeneration drifts
        (baseline_root / "benchmarks" / "BENCH_fake.json").write_text(
            json.dumps({"value": 2.0}))
        drifted = reproduce_all(check=True, out_dir=tmp_path / "o2",
                                manifest_path=tmp_path / "m2.json",
                                baseline_root=baseline_root)
        assert not drifted.ok
        assert drifted.drifted == ["fake"]
        assert "2.0" in drifted.artifacts["fake"].drift[0]

    def test_missing_baseline_is_drift(self, tmp_path, monkeypatch):
        def generate(ctx):
            (ctx.out_dir / "out.json").write_text("{}")
            return {}

        art = _synthetic("fake", generate, check=lambda c, a: [],
                         baseline="benchmarks/NOPE.json")
        self._patch_registry(monkeypatch, [art])
        manifest = reproduce_all(check=True, out_dir=tmp_path / "o",
                                 manifest_path=tmp_path / "m.json",
                                 baseline_root=tmp_path)
        assert not manifest.ok
        assert "missing" in manifest.artifacts["fake"].drift[0]

    def test_unchecked_run_records_no_drift(self, tmp_path, monkeypatch):
        def generate(ctx):
            (ctx.out_dir / "out.json").write_text("{}")
            return {}

        art = _synthetic("fake", generate, check=lambda c, a: ["boom"],
                         baseline="benchmarks/NOPE.json")
        self._patch_registry(monkeypatch, [art])
        manifest = reproduce_all(check=False, out_dir=tmp_path / "o",
                                 manifest_path=tmp_path / "m.json")
        assert manifest.ok
        assert manifest.artifacts["fake"].drift is None
        assert manifest.checked is False

    def test_failing_artifact_does_not_abort_the_sweep(self, tmp_path,
                                                       monkeypatch):
        def bad(ctx):
            raise ReproduceError("deliberate")

        def good(ctx):
            (ctx.out_dir / "ok.json").write_text("{}")
            return {}

        self._patch_registry(monkeypatch, [
            _synthetic("bad", bad),
            _synthetic("good", good, outputs=("ok.json",)),
        ])
        manifest = reproduce_all(out_dir=tmp_path / "o",
                                 manifest_path=tmp_path / "m.json")
        assert manifest.failed == ["bad"]
        assert manifest.artifacts["bad"].error == "deliberate"
        assert manifest.artifacts["good"].status == "ok"
        assert not manifest.ok

    def test_undeclared_output_fails_the_artifact(self, tmp_path,
                                                  monkeypatch):
        self._patch_registry(monkeypatch,
                             [_synthetic("ghost", lambda ctx: {})])
        manifest = reproduce_all(out_dir=tmp_path / "o",
                                 manifest_path=tmp_path / "m.json")
        assert manifest.failed == ["ghost"]
        assert "not written" in manifest.artifacts["ghost"].error


class TestAvailabilityComparator:
    """The real bench-availability drift rule on a mutated baseline."""

    def _doc(self, u_indep=0.05, at_indep=100.0):
        return {"profile": "SMALL", "seed": 0,
                "kinds": ["node_crash", "app_crash"],
                "versions": {
                    "INDEP": {"AA": 1 - u_indep, "AT": at_indep,
                              "unavailability": u_indep},
                    "COOP": {"AA": 0.99, "AT": 120.0,
                             "unavailability": 0.01},
                }}

    def _ctx(self, tmp_path, current, baseline):
        out = tmp_path / "out"
        out.mkdir(exist_ok=True)
        (out / "BENCH_availability.json").write_text(json.dumps(current))
        tree = tmp_path / "tree"
        (tree / "benchmarks").mkdir(parents=True, exist_ok=True)
        (tree / "benchmarks" / "BENCH_availability.json").write_text(
            json.dumps(baseline))
        return ReproduceContext(out_dir=out, baseline_root=tree)

    def _artifact(self):
        return REGISTRY["bench-availability"]

    def test_identical_matrix_is_clean(self, tmp_path):
        ctx = self._ctx(tmp_path, self._doc(), self._doc())
        assert _check_availability(ctx, self._artifact()) == []

    def test_unavailability_drift_detected(self, tmp_path):
        ctx = self._ctx(tmp_path, self._doc(u_indep=0.10),
                        self._doc(u_indep=0.05))  # 100% > the 35% gate
        drift = _check_availability(ctx, self._artifact())
        assert any("unavailability" in m and "INDEP" in m for m in drift)

    def test_throughput_drift_detected(self, tmp_path):
        ctx = self._ctx(tmp_path, self._doc(at_indep=150.0),
                        self._doc(at_indep=100.0))  # 50% > the 10% gate
        drift = _check_availability(ctx, self._artifact())
        assert any("throughput" in m for m in drift)

    def test_missing_version_detected(self, tmp_path):
        current = self._doc()
        del current["versions"]["COOP"]
        drift = _check_availability(
            self._ctx(tmp_path, current, self._doc()), self._artifact())
        assert any("COOP" in m for m in drift)
