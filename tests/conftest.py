"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def markers() -> MarkerLog:
    return MarkerLog()
