"""Property-based tests for the quantification core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.scaling import scale_template
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.faults.faultload import FaultCatalog, FaultRate
from repro.faults.types import FaultKind
from repro.press.cache import LruCache

normal = 100.0

stage_durations = st.lists(
    st.floats(min_value=0.0, max_value=500.0), min_size=7, max_size=7
)
stage_tputs = st.lists(
    st.floats(min_value=0.0, max_value=normal), min_size=7, max_size=7
)


def make_template(durations, tputs, self_recovered=True):
    stages = {
        n: Stage(n, d, t) for n, d, t in zip(STAGE_NAMES, durations, tputs)
    }
    return SevenStageTemplate(stages, normal, normal, self_recovered=self_recovered)


class TestModelProperties:
    @settings(max_examples=80, deadline=None)
    @given(durations=stage_durations, tputs=stage_tputs,
           mttf=st.floats(min_value=1e5, max_value=1e9),
           count=st.integers(min_value=1, max_value=16))
    def test_availability_bounded(self, durations, tputs, mttf, count):
        catalog = FaultCatalog([FaultRate(FaultKind.NODE_CRASH, mttf, 60.0, count)])
        model = AvailabilityModel(catalog, EnvironmentParams(0.0, 0.0))
        result = model.evaluate(
            {FaultKind.NODE_CRASH: make_template(durations, tputs)}, normal, normal)
        assert 0.0 <= result.availability <= 1.0
        assert result.unavailability == pytest.approx(
            sum(c.unavailability for c in result.contributions), abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(durations=stage_durations, tputs=stage_tputs,
           mttf_a=st.floats(min_value=1e6, max_value=1e8),
           factor=st.floats(min_value=1.1, max_value=10.0))
    def test_availability_monotone_in_mttf(self, durations, tputs, mttf_a, factor):
        tpl = {FaultKind.NODE_CRASH: make_template(durations, tputs)}
        env = EnvironmentParams(0.0, 0.0)
        u = []
        for mttf in (mttf_a, mttf_a * factor):
            catalog = FaultCatalog([FaultRate(FaultKind.NODE_CRASH, mttf, 60.0, 2)])
            u.append(AvailabilityModel(catalog, env).evaluate(tpl, normal, normal)
                     .unavailability)
        assert u[1] <= u[0] + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(durations=stage_durations, tputs=stage_tputs)
    def test_degraded_throughput_within_stage_range(self, durations, tputs):
        if sum(durations) <= 0:
            return
        catalog = FaultCatalog([FaultRate(FaultKind.NODE_CRASH, 1e7, 60.0, 1)])
        result = AvailabilityModel(catalog, EnvironmentParams(0.0, 0.0)).evaluate(
            {FaultKind.NODE_CRASH: make_template(durations, tputs)}, normal, normal)
        c = result.contributions[0]
        present = [t for d, t in zip(durations, tputs) if d > 0]
        # C's duration is re-derived from the MTTR, so its throughput is
        # always in play alongside stages with measured durations.
        lo = min(present + [tputs[2]])
        hi = max(present + [tputs[2]])
        assert lo - 1e-9 <= c.degraded_tput <= hi + 1e-9


class TestScalingProperties:
    @settings(max_examples=60, deadline=None)
    @given(durations=stage_durations, tputs=stage_tputs,
           k=st.floats(min_value=1.0, max_value=8.0))
    def test_scaled_fractions_never_worse(self, durations, tputs, k):
        """Scaling up never increases a stage's *fractional* deficit."""
        tpl = make_template(durations, tputs)
        scaled = scale_template(tpl, k)
        for n in STAGE_NAMES:
            frac = tpl.stage(n).throughput / tpl.normal_tput
            frac_k = scaled.stage(n).throughput / scaled.normal_tput
            assert frac_k >= frac - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(durations=stage_durations, tputs=stage_tputs)
    def test_identity_scaling(self, durations, tputs):
        tpl = make_template(durations, tputs)
        scaled = scale_template(tpl, 1.0)
        for n in STAGE_NAMES:
            assert scaled.stage(n).throughput == pytest.approx(tpl.stage(n).throughput)
            assert scaled.stage(n).duration == tpl.stage(n).duration


class TestLruProperties:
    @settings(max_examples=60, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=32),
           accesses=st.lists(st.integers(min_value=0, max_value=100),
                             min_size=1, max_size=300))
    def test_lru_invariants(self, capacity, accesses):
        cache = LruCache(capacity)
        for fid in accesses:
            if not cache.lookup(fid):
                cache.insert(fid)
            assert len(cache) <= capacity
            assert fid in cache  # just-touched entries are resident
            assert cache.contents()[-1] == fid  # ...and most recent

    @settings(max_examples=40, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=16),
           fids=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=1, max_size=100, unique=True))
    def test_lru_keeps_most_recent_k(self, capacity, fids):
        cache = LruCache(capacity)
        for fid in fids:
            cache.insert(fid)
        expected = fids[-capacity:]
        assert cache.contents() == expected
