"""Analytic availability model (phase 2) algebra."""

import pytest

from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.faults.faultload import FaultCatalog, FaultRate
from repro.faults.types import FaultKind


def flat_template(normal=100.0, offered=100.0, a=(60.0, 0.0), c_tput=75.0,
                  self_recovered=True):
    stages = {n: Stage(n, 0.0, normal) for n in STAGE_NAMES}
    stages["A"] = Stage("A", a[0], a[1])
    stages["C"] = Stage("C", 0.0, c_tput, provenance="supplied")
    stages["E"] = Stage("E", 0.0, c_tput, provenance="supplied")
    stages["G"] = Stage("G", 0.0, normal)
    return SevenStageTemplate(stages, normal, offered, self_recovered=self_recovered)


def catalog_one(kind=FaultKind.NODE_CRASH, mttf=1e6, mttr=200.0, count=1):
    return FaultCatalog([FaultRate(kind, mttf, mttr, count)])


class TestBasicAlgebra:
    def test_hand_computed_availability(self):
        # One component, MTTF 1e6 s, fault: 60 s at 0 then (200-60) s at 75.
        model = AvailabilityModel(catalog_one())
        result = model.evaluate({FaultKind.NODE_CRASH: flat_template()},
                                normal_tput=100.0, offered_rate=100.0)
        duration = 200.0
        f = duration / 1e6
        avg = (60 * 0 + 140 * 75) / duration
        expected_at = (1 - f) * 100.0 + f * avg
        assert result.average_throughput == pytest.approx(expected_at)
        assert result.availability == pytest.approx(expected_at / 100.0)

    def test_contributions_sum_to_unavailability(self):
        catalog = FaultCatalog([
            FaultRate(FaultKind.NODE_CRASH, 1e6, 200.0, 4),
            FaultRate(FaultKind.SCSI_TIMEOUT, 5e6, 3600.0, 8),
        ])
        templates = {
            FaultKind.NODE_CRASH: flat_template(),
            FaultKind.SCSI_TIMEOUT: flat_template(a=(30.0, 10.0), c_tput=50.0),
        }
        result = AvailabilityModel(catalog).evaluate(templates, 100.0, 100.0)
        total = sum(c.unavailability for c in result.contributions)
        assert result.unavailability == pytest.approx(total, rel=1e-9)

    def test_component_count_scales_linearly(self):
        t = {FaultKind.NODE_CRASH: flat_template()}
        u1 = AvailabilityModel(catalog_one(count=1)).evaluate(t, 100, 100).unavailability
        u4 = AvailabilityModel(catalog_one(count=4)).evaluate(t, 100, 100).unavailability
        assert u4 == pytest.approx(4 * u1, rel=1e-6)

    def test_mttf_inverse_proportionality(self):
        t = {FaultKind.NODE_CRASH: flat_template()}
        u_a = AvailabilityModel(catalog_one(mttf=1e6)).evaluate(t, 100, 100).unavailability
        u_b = AvailabilityModel(catalog_one(mttf=2e6)).evaluate(t, 100, 100).unavailability
        assert u_a == pytest.approx(2 * u_b, rel=1e-6)

    def test_perfect_fault_handling_gives_full_availability(self):
        t = {FaultKind.NODE_CRASH: flat_template(a=(0.0, 0.0), c_tput=100.0)}
        result = AvailabilityModel(catalog_one()).evaluate(t, 100, 100)
        assert result.availability == pytest.approx(1.0)

    def test_missing_template_kind_skipped(self):
        result = AvailabilityModel(catalog_one()).evaluate({}, 100, 100)
        assert result.availability == 1.0
        assert result.contributions == []

    def test_operator_path_adds_E_F_cost(self):
        env = EnvironmentParams(operator_response=600.0, reset_duration=20.0)
        t_self = {FaultKind.NODE_CRASH: flat_template(self_recovered=True)}
        t_op = {FaultKind.NODE_CRASH: flat_template(self_recovered=False)}
        u_self = AvailabilityModel(catalog_one(), env).evaluate(t_self, 100, 100).unavailability
        u_op = AvailabilityModel(catalog_one(), env).evaluate(t_op, 100, 100).unavailability
        assert u_op > u_self

    def test_saturated_fault_fraction_rejected(self):
        cat = catalog_one(mttf=150.0, mttr=200.0)  # fault fraction > 1
        with pytest.raises(ValueError):
            AvailabilityModel(cat).evaluate(
                {FaultKind.NODE_CRASH: flat_template()}, 100, 100)

    def test_offered_rate_validated(self):
        with pytest.raises(ValueError):
            AvailabilityModel(catalog_one()).evaluate({}, 100, 0.0)


class TestUnsaturatedAssumption:
    def test_measured_normal_noise_ignored_by_default(self):
        t = {FaultKind.NODE_CRASH: flat_template()}
        model = AvailabilityModel(catalog_one())
        noisy = model.evaluate(t, normal_tput=98.5, offered_rate=100.0)
        clean = model.evaluate(t, normal_tput=100.0, offered_rate=100.0)
        assert noisy.availability == pytest.approx(clean.availability)
        assert noisy.baseline_unavailability > 0.0

    def test_saturated_mode_keeps_measured_normal(self):
        t = {FaultKind.NODE_CRASH: flat_template()}
        model = AvailabilityModel(catalog_one())
        result = model.evaluate(t, 90.0, 100.0, assume_unsaturated=False)
        assert result.availability < 0.95


class TestResultApi:
    def test_contribution_lookup_and_sorting(self):
        catalog = FaultCatalog([
            FaultRate(FaultKind.NODE_CRASH, 1e6, 200.0, 1),
            FaultRate(FaultKind.APP_HANG, 1e5, 200.0, 1),
        ])
        templates = {
            FaultKind.NODE_CRASH: flat_template(),
            FaultKind.APP_HANG: flat_template(),
        }
        result = AvailabilityModel(catalog).evaluate(templates, 100, 100)
        assert result.contributions[0].kind is FaultKind.APP_HANG  # worst first
        assert result.contribution(FaultKind.NODE_CRASH) is not None
        assert result.contribution(FaultKind.SWITCH_DOWN) is None
        assert set(result.by_kind()) == {FaultKind.NODE_CRASH, FaultKind.APP_HANG}

    def test_environment_validation(self):
        with pytest.raises(ValueError):
            EnvironmentParams(operator_response=-1.0)
