"""QuantifyConfig construction guards."""

import dataclasses

import pytest

from repro.core import QuantifyConfig


class TestSeedValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            QuantifyConfig(seed=-1)

    def test_negative_seed_rejected_via_quick(self):
        with pytest.raises(ValueError, match="seed"):
            QuantifyConfig.quick(seed=-7)

    def test_negative_seed_rejected_via_replace(self):
        cfg = QuantifyConfig.quick()
        with pytest.raises(ValueError, match="seed"):
            dataclasses.replace(cfg, seed=-3)

    def test_zero_and_positive_seeds_accepted(self):
        assert QuantifyConfig(seed=0).seed == 0
        assert QuantifyConfig.quick(seed=12345).seed == 12345
