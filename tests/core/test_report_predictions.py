"""Report formatting and the COOP-based prediction rules."""

from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.predictions import predict_templates
from repro.core.report import format_bar, format_comparison, format_model_result
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.experiments.configs import version
from repro.faults.faultload import table1_catalog
from repro.faults.types import FaultKind


def coop_like_templates():
    """Synthetic COOP templates: stall in A, degraded C, operator path."""
    out = {}
    for kind in (FaultKind.NODE_CRASH, FaultKind.NODE_FREEZE, FaultKind.LINK_DOWN,
                 FaultKind.SCSI_TIMEOUT, FaultKind.APP_CRASH, FaultKind.APP_HANG,
                 FaultKind.SWITCH_DOWN):
        stages = {n: Stage(n, 0.0, 100.0) for n in STAGE_NAMES}
        stages["A"] = Stage("A", 20.0, 0.0)
        stages["C"] = Stage("C", 0.0, 70.0, provenance="supplied")
        stages["E"] = Stage("E", 0.0, 60.0, provenance="supplied")
        stages["F"] = Stage("F", 10.0, 0.0)
        out[kind] = SevenStageTemplate(stages, 100.0, 100.0,
                                       self_recovered=(kind is FaultKind.APP_CRASH))
    return out


def evaluate(templates, catalog=None):
    catalog = catalog or table1_catalog(4)
    return AvailabilityModel(catalog, EnvironmentParams()).evaluate(
        templates, 100.0, 100.0)


class TestPredictions:
    def test_membership_restores_self_recovery_for_node_faults(self):
        predicted = predict_templates(coop_like_templates(), version("MEM"))
        assert predicted[FaultKind.NODE_FREEZE].self_recovered
        assert predicted[FaultKind.LINK_DOWN].self_recovered
        # ...but stays blind to SCSI and hangs.
        assert not predicted[FaultKind.SCSI_TIMEOUT].self_recovered
        assert not predicted[FaultKind.APP_HANG].self_recovered

    def test_qmon_shrinks_detection(self):
        predicted = predict_templates(coop_like_templates(), version("QMON"))
        assert predicted[FaultKind.SCSI_TIMEOUT].stage("A").duration <= 3.0

    def test_fme_replaces_unmodeled_faults(self):
        predicted = predict_templates(coop_like_templates(), version("FME"))
        assert predicted[FaultKind.APP_HANG].self_recovered  # = app crash now

    def test_predicted_unavailability_orders_like_the_paper(self):
        coop_t = coop_like_templates()
        u = {}
        for name in ("COOP", "MEM", "MQ", "FME"):
            spec = version(name)
            templates = predict_templates(coop_t, spec) if name != "COOP" else coop_t
            catalog = spec.transform_catalog(table1_catalog(
                spec.server_count, with_frontend=spec.frontend))
            u[name] = evaluate(templates, catalog).unavailability
        assert u["MEM"] < u["COOP"]
        assert u["MQ"] < u["MEM"]
        assert u["FME"] < u["MQ"]

    def test_prediction_does_not_mutate_input(self):
        coop_t = coop_like_templates()
        before = coop_t[FaultKind.NODE_FREEZE].stage("A").duration
        predict_templates(coop_t, version("FME"))
        assert coop_t[FaultKind.NODE_FREEZE].stage("A").duration == before


class TestReportFormatting:
    def test_format_model_result_lists_contributions(self):
        result = evaluate(coop_like_templates())
        text = format_model_result(result)
        assert "availability=" in text
        assert "node crash" in text

    def test_format_comparison_aligns_versions(self):
        a = evaluate(coop_like_templates())
        text = format_comparison([a, a], title="t")
        assert text.splitlines()[0] == "t"
        assert "TOTAL unavail" in text
        assert "node freeze" in text

    def test_format_bar(self):
        assert format_bar(50.0, 100.0, width=10) == "#####"
        assert format_bar(0.0, 100.0) == ""
        assert format_bar(1.0, 0.0) == ""
        assert len(format_bar(500.0, 100.0, width=10)) == 10
