"""Section 6.3 scaling rules."""

import pytest

from repro.core.scaling import NODE_BOUND_KINDS, ScalingRules, scale_catalog, scale_template
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.faults.faultload import table1_catalog
from repro.faults.types import FaultKind


def template(normal=100.0, stage_tputs=None):
    stage_tputs = stage_tputs or {}
    stages = {
        n: Stage(n, 10.0, stage_tputs.get(n, normal)) for n in STAGE_NAMES
    }
    return SevenStageTemplate(stages, normal, normal, version="COOP")


class TestScaleTemplate:
    def test_identity_at_k1(self):
        tpl = template(stage_tputs={"A": 0.0, "C": 75.0})
        scaled = scale_template(tpl, 1.0)
        for n in STAGE_NAMES:
            assert scaled.stage(n).throughput == pytest.approx(tpl.stage(n).throughput)
        assert scaled.normal_tput == tpl.normal_tput

    def test_durations_unchanged(self):
        tpl = template(stage_tputs={"A": 0.0})
        scaled = scale_template(tpl, 2.0)
        for n in STAGE_NAMES:
            assert scaled.stage(n).duration == tpl.stage(n).duration

    def test_normal_scales_linearly(self):
        scaled = scale_template(template(), 2.0)
        assert scaled.normal_tput == 200.0
        assert scaled.offered_rate == 200.0

    def test_zero_stays_zero(self):
        tpl = template(stage_tputs={"A": 0.0})
        scaled = scale_template(tpl, 4.0)
        assert scaled.stage("A").throughput == 0.0

    def test_one_node_lost_fraction_improves(self):
        # 4 nodes, stage at 75% (one node's worth lost): at 8 nodes the
        # same fault should cost 1/8 => 87.5%.
        tpl = template(stage_tputs={"C": 75.0})
        scaled = scale_template(tpl, 2.0, ScalingRules(base_nodes=4))
        assert scaled.stage("C").throughput == pytest.approx(0.875 * 200.0)

    def test_whole_cluster_stall_fraction_preserved(self):
        tpl = template(stage_tputs={"B": 20.0})  # 20% of normal: stall-ish
        scaled = scale_template(tpl, 2.0)
        assert scaled.stage("B").throughput == pytest.approx(40.0)  # still 20%

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_template(template(), 0.0)

    def test_version_tagged(self):
        assert scale_template(template(), 2.0).version == "COOPx2"


class TestScaleCatalog:
    def test_node_bound_counts_multiply(self):
        cat = scale_catalog(table1_catalog(4), 2)
        for kind in NODE_BOUND_KINDS:
            assert cat[kind].count == 2 * table1_catalog(4)[kind].count

    def test_switch_count_fixed(self):
        cat = scale_catalog(table1_catalog(4), 4)
        assert cat[FaultKind.SWITCH_DOWN].count == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_catalog(table1_catalog(4), 0)

    def test_scaled_model_doubles_node_fault_unavailability(self):
        """COOP-style scaling: a version whose per-fault deficit fraction is
        scale-invariant (whole-cluster stalls + fixed fractions) doubles
        its node-fault unavailability when the cluster doubles."""
        from repro.core.model import AvailabilityModel

        tpl = template(stage_tputs={"A": 0.0, "B": 10.0, "C": 20.0})
        cat4 = table1_catalog(4).without(FaultKind.SWITCH_DOWN)
        base = AvailabilityModel(cat4).evaluate(
            {k: tpl for k in cat4.kinds()}, 100.0, 100.0)
        tpl8 = scale_template(tpl, 2.0)
        cat8 = scale_catalog(cat4, 2)
        scaled = AvailabilityModel(cat8).evaluate(
            {k: tpl8 for k in cat8.kinds()}, 200.0, 200.0)
        assert scaled.unavailability == pytest.approx(2 * base.unavailability, rel=0.01)
