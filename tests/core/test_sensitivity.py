"""Sensitivity analysis over the analytic model."""

import pytest

from repro.core.model import EnvironmentParams
from repro.core.sensitivity import SensitivityAnalysis, format_levers
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.faults.faultload import FaultCatalog, FaultRate
from repro.faults.types import FaultKind


def template(normal=100.0, a_tput=0.0, c_tput=75.0, recovered=True):
    stages = {n: Stage(n, 0.0, normal) for n in STAGE_NAMES}
    stages["A"] = Stage("A", 15.0, a_tput)
    stages["C"] = Stage("C", 0.0, c_tput, provenance="supplied")
    stages["E"] = Stage("E", 0.0, c_tput, provenance="supplied")
    stages["F"] = Stage("F", 10.0, 0.0)
    return SevenStageTemplate(stages, normal, normal, self_recovered=recovered)


@pytest.fixture
def analysis():
    catalog = FaultCatalog([
        FaultRate(FaultKind.NODE_CRASH, 1.2e6, 180.0, 4),
        FaultRate(FaultKind.NODE_FREEZE, 1.2e6, 180.0, 4),
        FaultRate(FaultKind.SCSI_TIMEOUT, 3.2e7, 3600.0, 8),
    ])
    templates = {
        FaultKind.NODE_CRASH: template(recovered=True),
        FaultKind.NODE_FREEZE: template(recovered=False),  # operator path
        FaultKind.SCSI_TIMEOUT: template(recovered=True),
    }
    return SensitivityAnalysis(templates, catalog, EnvironmentParams(),
                               100.0, 100.0, version="T")


class TestLevers:
    def test_hardening_reduces_unavailability(self, analysis):
        imp = analysis.harden(FaultKind.NODE_CRASH, 10.0)
        assert imp.delta > 0
        assert imp.new_unavailability < analysis.baseline.unavailability

    def test_hardening_scales_inverse(self, analysis):
        """10x MTTF removes ~90% of that class's contribution."""
        base_u = analysis.baseline.contribution(FaultKind.NODE_CRASH).unavailability
        imp = analysis.harden(FaultKind.NODE_CRASH, 10.0)
        assert imp.delta == pytest.approx(0.9 * base_u, rel=0.01)

    def test_faster_repair_shrinks_stage_c(self, analysis):
        imp = analysis.faster_repair(FaultKind.SCSI_TIMEOUT, 0.1)
        assert imp.delta > 0

    def test_faster_operator_targets_splinter_classes(self, analysis):
        imp = analysis.faster_operator(0.1)
        # only the non-self-recovering class (freeze) benefits
        freeze_u = analysis.baseline.contribution(FaultKind.NODE_FREEZE).unavailability
        assert 0 < imp.delta <= freeze_u

    def test_unknown_kind_rejected(self, analysis):
        with pytest.raises(KeyError):
            analysis.harden(FaultKind.APP_HANG, 10.0)

    def test_ranked_levers_sorted(self, analysis):
        levers = analysis.ranked_levers()
        deltas = [l.delta for l in levers]
        assert deltas == sorted(deltas, reverse=True)
        # freeze (frequent + operator path) dominates the ranking
        assert levers[0].kind in (FaultKind.NODE_FREEZE, None)


class TestPathTo:
    def test_reaches_reachable_target(self, analysis):
        start = analysis.baseline.availability
        target = min(1.0 - (1.0 - start) / 20.0, 0.999999)
        steps = analysis.path_to(target)
        assert steps  # needed at least one lever
        assert len(steps) <= 10

    def test_no_steps_if_already_there(self, analysis):
        steps = analysis.path_to(analysis.baseline.availability / 2)
        assert steps == []

    def test_validates_target(self, analysis):
        with pytest.raises(ValueError):
            analysis.path_to(1.5)

    def test_nines(self, analysis):
        assert analysis.nines() == pytest.approx(
            -__import__("math").log10(analysis.baseline.unavailability))


class TestFormatting:
    def test_format_levers(self, analysis):
        text = format_levers(analysis.ranked_levers(), analysis.baseline.unavailability)
        assert "baseline unavailability" in text
        assert "MTTF x10" in text
