"""7-stage template fitting on synthetic throughput timelines."""

import pytest

from repro.core.template import (
    STAGE_NAMES,
    FitConfig,
    SevenStageTemplate,
    Stage,
    TemplateFitter,
)
from repro.faults.campaign import CampaignConfig, ExperimentTrace
from repro.faults.types import FaultComponent, FaultKind
from repro.sim.series import MarkerLog, ThroughputSeries


def synth_series(segments, dt=0.02):
    """Build a ThroughputSeries from (t_start, t_end, rate) segments.

    Segments are generated independently (events at start + k/rate), so a
    near-zero-rate segment cannot swallow the ones after it.
    """
    series = ThroughputSeries()
    for start, end, rate in segments:
        if rate <= 0:
            continue
        gap = 1.0 / rate
        if gap > (end - start):
            continue  # too slow to produce an event in this window
        t = start
        while t < end:
            series.record(t)
            t += gap
    return series


def make_trace(segments, t_inject, t_repair, t_end, markers=None,
               normal=100.0, offered=100.0, t_reset=None):
    m = markers or MarkerLog()
    return ExperimentTrace(
        component=FaultComponent(FaultKind.NODE_CRASH, "n1"),
        config=CampaignConfig(),
        series=synth_series(segments),
        markers=m,
        t_inject=t_inject,
        t_repair=t_repair,
        t_end=t_end,
        normal_tput=normal,
        offered_rate=offered,
        t_reset=t_reset,
    )


class TestStageValidation:
    def test_stage_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Stage("Z", 1.0, 1.0)
        with pytest.raises(ValueError):
            Stage("A", -1.0, 1.0)
        with pytest.raises(ValueError):
            Stage("A", 1.0, -1.0)

    def test_template_requires_all_stages(self):
        stages = {n: Stage(n, 0.0, 0.0) for n in STAGE_NAMES[:-1]}
        with pytest.raises(ValueError):
            SevenStageTemplate(stages, 100.0, 100.0)


class TestFitting:
    def test_detected_fault_stage_boundaries(self):
        # normal 100 until 60; drop to 0 during 60..75 (detection at 75);
        # recover to 75 (one node lost) until repair at 150; back to 100.
        markers = MarkerLog()
        markers.mark(75.0, "detected", ("heartbeat", 2, 1))
        trace = make_trace(
            [(0, 60, 100), (60, 75, 0.0), (75, 150, 75.0), (150, 210, 100.0)],
            t_inject=60.0, t_repair=150.0, t_end=210.0, markers=markers,
        )
        tpl = TemplateFitter().fit(trace)
        assert tpl.stage("A").duration == pytest.approx(15.0)
        assert tpl.stage("A").throughput < 5.0
        assert tpl.stage("C").throughput == pytest.approx(75.0, rel=0.05)
        assert tpl.self_recovered

    def test_undetected_fault_A_extends_through_C(self):
        trace = make_trace(
            [(0, 60, 100), (60, 150, 70.0), (150, 210, 100.0)],
            t_inject=60.0, t_repair=150.0, t_end=210.0,
        )
        tpl = TemplateFitter().fit(trace)
        assert tpl.stage("A").duration == pytest.approx(90.0)
        assert tpl.stage("B").duration == 0.0
        # C continues at the undetected degraded level
        assert tpl.stage("C").throughput == pytest.approx(tpl.stage("A").throughput)

    def test_operator_reset_fills_F_and_G(self):
        markers = MarkerLog()
        markers.mark(65.0, "detected", ("x", 0, 1))
        trace = make_trace(
            [(0, 60, 100), (60, 65, 0.0), (65, 150, 60.0), (150, 200, 60.0),
             (210, 230, 50.0), (230, 260, 100.0)],
            t_inject=60.0, t_repair=150.0, t_end=260.0, markers=markers,
            t_reset=200.0,
        )
        tpl = TemplateFitter().fit(trace)
        assert not tpl.self_recovered
        assert tpl.stage("F").duration == pytest.approx(10.0)  # reset_duration
        assert tpl.stage("F").throughput < 10.0
        assert tpl.stage("G").duration > 0.0

    def test_resolved_fills_supplied_durations(self):
        markers = MarkerLog()
        markers.mark(75.0, "detected", ("x", 0, 1))
        trace = make_trace(
            [(0, 60, 100), (60, 75, 0.0), (75, 150, 75.0), (150, 210, 100.0)],
            t_inject=60.0, t_repair=150.0, t_end=210.0, markers=markers,
        )
        tpl = TemplateFitter().fit(trace)
        resolved = tpl.resolved(mttr=300.0, operator_response=600.0, reset_duration=10.0)
        a, b = resolved.stage("A").duration, resolved.stage("B").duration
        assert resolved.stage("C").duration == pytest.approx(300.0 - a - b)
        assert resolved.stage("E").duration == 0.0  # self-recovered

    def test_resolved_operator_path(self):
        stages = {n: Stage(n, 0.0, 50.0) for n in STAGE_NAMES}
        stages["A"] = Stage("A", 20.0, 10.0)
        tpl = SevenStageTemplate(stages, 100.0, 100.0, self_recovered=False)
        resolved = tpl.resolved(mttr=100.0, operator_response=600.0, reset_duration=15.0)
        assert resolved.stage("C").duration == pytest.approx(80.0)
        assert resolved.stage("E").duration == 600.0
        assert resolved.stage("F").duration == 15.0

    def test_resolved_clamps_negative_C(self):
        stages = {n: Stage(n, 0.0, 50.0) for n in STAGE_NAMES}
        stages["A"] = Stage("A", 500.0, 10.0)
        tpl = SevenStageTemplate(stages, 100.0, 100.0)
        resolved = tpl.resolved(mttr=100.0, operator_response=0.0, reset_duration=0.0)
        assert resolved.stage("C").duration == 0.0

    def test_served_and_deficit(self):
        stages = {n: Stage(n, 0.0, 0.0) for n in STAGE_NAMES}
        stages["A"] = Stage("A", 10.0, 40.0)
        stages["C"] = Stage("C", 90.0, 80.0)
        tpl = SevenStageTemplate(stages, 100.0, 100.0)
        assert tpl.served_during_fault() == pytest.approx(10 * 40 + 90 * 80)
        assert tpl.deficit() == pytest.approx(10 * 60 + 90 * 20)
        assert tpl.total_duration == pytest.approx(100.0)

    def test_fit_full_recovery_has_zero_EFG_cost(self):
        markers = MarkerLog()
        markers.mark(61.0, "detected", ("x", 0, 1))
        trace = make_trace(
            [(0, 60, 100), (60, 61, 0.0), (61, 150, 95.0), (150, 210, 100.0)],
            t_inject=60.0, t_repair=150.0, t_end=210.0, markers=markers,
        )
        tpl = TemplateFitter().fit(trace)
        resolved = tpl.resolved(180.0, 600.0, 10.0)
        for name in ("E", "F", "G"):
            assert resolved.stage(name).duration == 0.0


class TestStabilization:
    def test_immediate_stability_gives_zero(self):
        fitter = TemplateFitter()
        series = synth_series([(0, 100, 50.0)])
        assert fitter._stabilization_time(series, 10.0, 90.0, 50.0, 100.0) == 0.0

    def test_step_change_located(self):
        fitter = TemplateFitter(FitConfig(stable_buckets=3))
        series = synth_series([(0, 30, 10.0), (30, 100, 80.0)])
        t = fitter._stabilization_time(series, 0.0, 100.0, 80.0, 100.0)
        assert t == pytest.approx(30.0, abs=2.0)

    def test_never_stable_returns_window(self):
        fitter = TemplateFitter()
        series = synth_series([(0, 100, 10.0)])
        t = fitter._stabilization_time(series, 0.0, 50.0, 90.0, 100.0)
        assert t == pytest.approx(50.0)
