"""Property-based round-trips for the template fitter.

Generate a random-but-well-formed fault episode, synthesize its
throughput timeline, fit it, and check the fitter recovers the stage
structure within tolerance.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.template import TemplateFitter
from repro.sim.series import MarkerLog
from tests.core.test_template import make_trace

NORMAL = 100.0


@settings(max_examples=40, deadline=None)
@given(
    detect_delay=st.floats(min_value=5.0, max_value=40.0),
    stall_level=st.floats(min_value=0.0, max_value=0.2),
    degraded_level=st.floats(min_value=0.4, max_value=0.8),
)
def test_detected_fault_round_trip(detect_delay, stall_level, degraded_level):
    """normal -> stall until detection -> degraded until repair -> normal."""
    t_inject, fault_len = 60.0, 120.0
    t_detect = t_inject + detect_delay
    t_repair = t_inject + fault_len
    assume(t_detect < t_repair - 20.0)
    markers = MarkerLog()
    markers.mark(t_detect, "detected", ("x", 0, 1))
    trace = make_trace(
        [(0, t_inject, NORMAL),
         (t_inject, t_detect, stall_level * NORMAL),
         (t_detect, t_repair, degraded_level * NORMAL),
         (t_repair, t_repair + 60.0, NORMAL)],
        t_inject=t_inject, t_repair=t_repair, t_end=t_repair + 60.0,
        markers=markers,
    )
    tpl = TemplateFitter().fit(trace)
    assert tpl.stage("A").duration == pytest.approx(detect_delay, abs=1e-6)
    assert tpl.stage("A").throughput == pytest.approx(
        stall_level * NORMAL, abs=0.15 * NORMAL)
    assert tpl.stage("C").throughput == pytest.approx(
        degraded_level * NORMAL, abs=0.12 * NORMAL)
    assert tpl.self_recovered


@settings(max_examples=30, deadline=None)
@given(degraded=st.floats(min_value=0.2, max_value=0.7))
def test_undetected_fault_round_trip(degraded):
    trace = make_trace(
        [(0, 60, NORMAL), (60, 180, degraded * NORMAL), (180, 240, NORMAL)],
        t_inject=60.0, t_repair=180.0, t_end=240.0,
    )
    tpl = TemplateFitter().fit(trace)
    assert tpl.stage("A").duration == pytest.approx(120.0)
    assert tpl.stage("B").duration == 0.0
    assert tpl.stage("C").throughput == pytest.approx(tpl.stage("A").throughput)


@settings(max_examples=30, deadline=None)
@given(
    plateau=st.floats(min_value=0.3, max_value=0.85),
    mttr=st.floats(min_value=100.0, max_value=5000.0),
    operator=st.floats(min_value=60.0, max_value=3600.0),
)
def test_flat_plateau_is_charged_the_operator_path(plateau, mttr, operator):
    """A post-repair plateau below the recovered level and not climbing
    must resolve to the operator-path stages, and the resolved template's
    cost must grow with both MTTR and the operator response."""
    markers = MarkerLog()
    markers.mark(70.0, "detected", ("x", 0, 1))
    trace = make_trace(
        [(0, 60, NORMAL), (60, 70, 0.0), (70, 180, plateau * NORMAL),
         (180, 280, plateau * NORMAL)],
        t_inject=60.0, t_repair=180.0, t_end=280.0, markers=markers,
    )
    tpl = TemplateFitter().fit(trace)
    assert not tpl.self_recovered
    resolved = tpl.resolved(mttr=mttr, operator_response=operator,
                            reset_duration=10.0)
    assert resolved.stage("E").duration == operator
    deficit = resolved.deficit()
    bigger = tpl.resolved(mttr=mttr * 2, operator_response=operator * 2,
                          reset_duration=10.0).deficit()
    assert bigger >= deficit


@settings(max_examples=30, deadline=None)
@given(level=st.floats(min_value=0.94, max_value=1.0))
def test_near_normal_tail_is_self_recovered(level):
    trace = make_trace(
        [(0, 60, NORMAL), (60, 75, 10.0), (75, 180, level * NORMAL),
         (180, 260, level * NORMAL)],
        t_inject=60.0, t_repair=180.0, t_end=260.0,
    )
    tpl = TemplateFitter().fit(trace)
    assert tpl.self_recovered
