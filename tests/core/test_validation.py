"""Validation-module plumbing (the expensive end-to-end path runs in
benchmarks/test_model_validation.py)."""

import numpy as np
import pytest

from repro.core.validation import (
    VALIDATION_ENVIRONMENT,
    ValidationResult,
    _fault_load_driver,
    validation_catalog,
)
from repro.core.model import ModelResult
from repro.faults.types import FaultKind


class TestValidationCatalog:
    def test_counts_track_topology(self):
        cat = validation_catalog(n_nodes=4, disks_per_node=2)
        assert cat[FaultKind.NODE_CRASH].count == 4
        assert cat[FaultKind.SCSI_TIMEOUT].count == 8
        assert FaultKind.FRONTEND_FAILURE not in cat
        assert FaultKind.FRONTEND_FAILURE in validation_catalog(with_frontend=True)

    def test_compressed_but_subcritical(self):
        """The catalog's fault fractions must stay well below 1 even with
        the operator path charged on every fault."""
        cat = validation_catalog(n_nodes=5, disks_per_node=2)
        env = VALIDATION_ENVIRONMENT
        slack = env.operator_response + env.reset_duration + 60.0
        total = sum(r.count * (r.mttr + slack) / r.mttf for r in cat)
        assert total < 0.6


class TestFaultLoadDriver:
    def test_serializes_faults_and_logs_them(self, env, markers):
        """Faults queue: a new fault starts only after the previous repair
        + recovery wait, per the paper's model assumption."""
        from repro.faults.faultload import FaultCatalog, FaultRate
        from repro.faults.injector import FaultInjector
        from repro.hardware.host import Host
        from repro.sim.series import ThroughputSeries

        host = Host(env, "n1", 1)
        catalog = FaultCatalog([FaultRate(FaultKind.NODE_FREEZE, 50.0, 5.0, 1)])

        class W:
            pass

        world = W()
        world.env = env
        world.markers = markers
        world.offered_rate = 100.0
        world.injector = FaultInjector(env, {"n1": host}, markers=markers)
        world.default_target = lambda kind: "n1"
        world.operator_reset = lambda: None

        class Stats:
            series = ThroughputSeries()

        world.stats = Stats()

        def feed():  # keep the rate "healthy" so no operator resets happen
            while True:
                yield env.timeout(0.01)
                world.stats.series.record(env.now)

        env.process(feed())
        log = []
        rng = np.random.default_rng(5)
        env.process(_fault_load_driver(world, catalog, rng, horizon=400.0,
                                       recovery_wait=5.0, operator_threshold=0.5,
                                       log=log))
        env.run(until=400.0)
        assert len(log) >= 2
        # Never two active faults at once.
        injected = markers.all("fault_injected")
        repaired = markers.all("fault_repaired")
        events = sorted([(t, +1) for t, _ in injected] + [(t, -1) for t, _ in repaired])
        active = 0
        for _, delta in events:
            active += delta
            assert 0 <= active <= 1

    def test_result_ratio(self):
        result = ValidationResult(
            version="X",
            predicted=ModelResult("X", 100.0, 100.0, 99.0, 0.99),
            measured_availability=0.98,
            horizon=100.0,
            faults_injected=3,
        )
        assert result.ratio == pytest.approx(2.0)
        assert result.measured_unavailability == pytest.approx(0.02)
