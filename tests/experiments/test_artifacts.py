"""Artifact persistence."""

import pytest

from repro.experiments.artifacts import rows_to_csv, write_all, write_figure
from repro.experiments.figures import FigureOutput


@pytest.fixture
def figure():
    return FigureOutput(
        name="figX",
        title="A test figure",
        rows=[{"version": "COOP", "unavailability": 0.005,
               "by_kind": {"node_crash": 1e-4}},
              {"version": "FME", "unavailability": 0.0005,
               "by_kind": {"node_crash": 1e-5}}],
        text="version unavail\nCOOP 0.005\nFME 0.0005",
    )


class TestCsv:
    def test_header_and_rows(self, figure):
        text = rows_to_csv(figure.rows)
        lines = text.strip().splitlines()
        assert lines[0] == "version,unavailability,by_kind"
        assert len(lines) == 3
        assert lines[1].startswith("COOP,0.005")

    def test_nested_values_json_encoded(self, figure):
        text = rows_to_csv(figure.rows)
        assert '""node_crash""' in text  # csv-escaped JSON

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""

    def test_column_union(self):
        text = rows_to_csv([{"a": 1}, {"a": 2, "b": 3}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"


class TestWrite:
    def test_write_figure_creates_txt_and_csv(self, figure, tmp_path):
        paths = write_figure(figure, tmp_path)
        assert [p.name for p in paths] == ["figX.txt", "figX.csv"]
        content = (tmp_path / "figX.txt").read_text()
        assert "A test figure" in content
        assert "COOP 0.005" in content

    def test_write_all_builds_index(self, figure, tmp_path):
        other = FigureOutput("figY", "Other", [], "nothing")
        index = write_all([figure, other], tmp_path)
        text = index.read_text()
        assert "`figX`" in text and "`figY`" in text
        assert (tmp_path / "figY.txt").exists()
        assert not (tmp_path / "figY.csv").exists()  # no rows -> no csv

    def test_write_is_idempotent(self, figure, tmp_path):
        write_figure(figure, tmp_path)
        write_figure(figure, tmp_path)
        assert (tmp_path / "figX.txt").exists()
