"""Saturation search."""

import pytest

from repro.experiments.calibration import (
    CalibrationConfig,
    find_saturation,
    measure_availability,
    operating_rate,
)
from repro.experiments.configs import version
from repro.experiments.profiles import SMALL

pytestmark = pytest.mark.slow

FAST_CAL = CalibrationConfig(warmup=70.0, window=20.0, max_iterations=5,
                             rel_tolerance=0.15)


class TestCalibration:
    def test_indep_saturation_matches_profile(self):
        sat, probes = find_saturation("INDEP", SMALL, FAST_CAL,
                                      lo=40.0, hi=160.0)
        # the profile's operating point (62) is ~70-90% of saturation
        assert 65.0 <= sat <= 130.0
        assert len(probes) >= 3

    def test_measure_availability_below_and_above(self):
        low = measure_availability(version("INDEP"), SMALL, 40.0, FAST_CAL)
        high = measure_availability(version("INDEP"), SMALL, 200.0, FAST_CAL)
        assert low > 0.99
        assert high < 0.9

    def test_unsustainable_floor_rejected(self):
        with pytest.raises(ValueError):
            find_saturation("INDEP", SMALL, FAST_CAL, lo=500.0, hi=1000.0)

    def test_operating_rate_fraction(self):
        rate = operating_rate("INDEP", SMALL, fraction=0.5,
                              config=FAST_CAL, lo=40.0, hi=160.0)
        assert 30.0 <= rate <= 70.0

    def test_validation(self):
        with pytest.raises(ValueError):
            find_saturation("INDEP", SMALL, FAST_CAL, lo=100.0, hi=50.0)
        with pytest.raises(ValueError):
            operating_rate("INDEP", SMALL, fraction=0.0)
