"""CLI plumbing (cheap commands only; experiment commands are covered by
the integration/benchmark suites)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_versions_command(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        for name in ("INDEP", "COOP", "FME", "X-SW-RAID"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_version_rejected(self):
        # Version names are free-form at parse time (aliases, case
        # folding); resolution rejects unknown names at dispatch.
        with pytest.raises(SystemExit, match="unknown version"):
            main(["--quick", "quantify", "NOPE"])

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inject", "COOP", "volcano"])

    def test_figure_unknown_name_is_error(self, capsys):
        assert main(["--quick", "figure", "fig999"]) == 2

    def test_quick_flag_parsed(self):
        args = build_parser().parse_args(["--quick", "versions"])
        assert args.quick

    def test_inject_target_option(self):
        args = build_parser().parse_args(
            ["inject", "COOP", "scsi_timeout", "--target", "n2.disk1"])
        assert args.target == "n2.disk1"

    def test_validate_horizon_option(self):
        args = build_parser().parse_args(["validate", "COOP", "--horizon", "60"])
        assert args.horizon == 60.0


class TestAccountingCommands:
    """record/budget/timeline plumbing against a synthetic artifact
    (no simulation)."""

    @pytest.fixture
    def record_path(self, tmp_path):
        from repro.obs.recorder import write_record

        from tests.obs.synth import standard_detected_record

        record = standard_detected_record()
        record.version = "COOP"  # resolvable to a fault catalog
        path = tmp_path / "flight.json"
        write_record(record, path)
        return str(path)

    def test_record_parser_defaults(self):
        args = build_parser().parse_args(["record", "COOP", "node_crash"])
        assert args.fault == "node_crash"
        assert args.out is None and args.seed is None

    def test_record_rejects_unknown_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record", "COOP", "volcano"])

    def test_budget_parser_options(self):
        args = build_parser().parse_args(
            ["budget", "a.json", "b.json", "--objective", "0.99",
             "--operator-response", "600", "--reset-duration", "5"])
        assert args.records == ["a.json", "b.json"]
        assert args.objective == 0.99
        assert args.operator_response == 600.0
        assert args.reset_duration == 5.0

    def test_budget_command_renders_report(self, record_path, capsys):
        assert main(["budget", record_path]) == 0
        out = capsys.readouterr().out
        assert "COOP" in out
        assert "per-stage rollup" in out

    def test_budget_json_mode(self, record_path, capsys):
        import json

        assert main(["budget", record_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "COOP"
        assert payload["measured"][0]["coverage"] >= 0.95

    def test_budget_unknown_version_is_clean_error(self, tmp_path):
        from repro.obs.recorder import write_record

        from tests.obs.synth import standard_detected_record

        path = tmp_path / "synth.json"
        write_record(standard_detected_record(), path)
        with pytest.raises(SystemExit, match="no fault catalog"):
            main(["budget", str(path)])

    def test_budget_bad_file_is_clean_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{notjson")
        with pytest.raises(SystemExit, match="cannot read record"):
            main(["budget", str(bad)])

    def test_timeline_command(self, record_path, capsys):
        assert main(["timeline", record_path]) == 0
        out = capsys.readouterr().out
        assert "INJECT" in out
        assert "fit cross-check" in out

    def test_timeline_knobs(self, record_path):
        args = build_parser().parse_args(
            ["timeline", record_path, "--bucket", "10", "--width", "20"])
        assert args.bucket == 10.0
        assert args.width == 20
