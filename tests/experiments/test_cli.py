"""CLI plumbing (cheap commands only; experiment commands are covered by
the integration/benchmark suites)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_versions_command(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        for name in ("INDEP", "COOP", "FME", "X-SW-RAID"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_version_rejected(self):
        # Version names are free-form at parse time (aliases, case
        # folding); resolution rejects unknown names at dispatch.
        with pytest.raises(SystemExit, match="unknown version"):
            main(["--quick", "quantify", "NOPE"])

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inject", "COOP", "volcano"])

    def test_figure_unknown_name_is_error(self, capsys):
        assert main(["--quick", "figure", "fig999"]) == 2

    def test_quick_flag_parsed(self):
        args = build_parser().parse_args(["--quick", "versions"])
        assert args.quick

    def test_inject_target_option(self):
        args = build_parser().parse_args(
            ["inject", "COOP", "scsi_timeout", "--target", "n2.disk1"])
        assert args.target == "n2.disk1"

    def test_validate_horizon_option(self):
        args = build_parser().parse_args(["validate", "COOP", "--horizon", "60"])
        assert args.horizon == 60.0
