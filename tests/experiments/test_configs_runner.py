"""Version specs, profiles, and the world builder."""

import pytest

from repro.experiments.configs import VERSIONS, version
from repro.experiments.profiles import SMALL, TINY
from repro.experiments.runner import build_world
from repro.faults.types import FaultKind


class TestVersionSpecs:
    def test_all_paper_versions_defined(self):
        for name in ("INDEP", "FE-X-INDEP", "COOP", "FE-X", "MEM", "QMON",
                     "MQ", "FME", "S-FME", "C-MON", "X-SW", "X-SW-RAID"):
            assert name in VERSIONS

    def test_unknown_version(self):
        with pytest.raises(KeyError):
            version("NOPE")

    def test_membership_replaces_ring(self):
        assert version("COOP").ring_detection
        assert not version("MEM").ring_detection

    def test_server_count_includes_extra(self):
        assert version("COOP").server_count == 4
        assert version("FE-X").server_count == 5

    def test_with_nodes(self):
        spec = version("FME").with_nodes(8)
        assert spec.n_nodes == 8 and spec.server_count == 9
        assert spec.name == "FME-8"

    def test_catalog_transforms_applied(self):
        from repro.faults.faultload import YEAR, table1_catalog

        cat = version("X-SW").transform_catalog(
            table1_catalog(5, with_frontend=True))
        assert cat[FaultKind.SWITCH_DOWN].mttf > 100 * YEAR
        plain = version("C-MON").transform_catalog(
            table1_catalog(5, with_frontend=True))
        assert plain[FaultKind.SWITCH_DOWN].mttf == YEAR


class TestProfiles:
    def test_scaled_rates(self):
        scaled = SMALL.scaled_rates(8)
        assert scaled.coop_rate == pytest.approx(2 * SMALL.coop_rate)

    def test_with_cache_files(self):
        assert SMALL.with_cache_files(60).press.cache_files == 60

    def test_tiny_is_lighter(self):
        assert TINY.coop_rate < SMALL.coop_rate


class TestBuildWorld:
    def test_coop_world_shape(self):
        world = build_world(version("COOP"), SMALL)
        assert len(world.hosts) == 4
        assert len(world.disks) == 8
        assert world.frontend is None
        assert not world.membership_daemons and not world.fme_daemons
        assert world.offered_rate == SMALL.coop_rate

    def test_full_stack_world_shape(self):
        world = build_world(version("C-MON"), SMALL)
        assert len(world.hosts) == 5
        assert world.frontend is not None
        assert world.sfme is not None
        assert len(world.membership_daemons) == 5
        assert len(world.fme_daemons) == 5
        for srv in world.servers:
            assert srv.shared_view is not None
            assert srv.config.queue_monitoring
            assert not srv.config.ring_detection

    def test_indep_world_has_no_cluster_faults(self):
        world = build_world(version("INDEP"), SMALL)
        kinds = world.injectable_kinds()
        assert FaultKind.LINK_DOWN not in kinds
        assert FaultKind.SWITCH_DOWN not in kinds
        assert FaultKind.NODE_CRASH in kinds

    def test_frontend_fault_only_with_frontend(self):
        assert FaultKind.FRONTEND_FAILURE not in build_world(
            version("COOP"), SMALL).injectable_kinds()
        assert FaultKind.FRONTEND_FAILURE in build_world(
            version("FE-X"), SMALL).injectable_kinds()

    def test_default_targets(self):
        world = build_world(version("FE-X"), SMALL)
        assert world.default_target(FaultKind.NODE_CRASH) == "n1"
        assert world.default_target(FaultKind.SCSI_TIMEOUT) == "n1.disk0"
        assert world.default_target(FaultKind.SWITCH_DOWN) == "switch0"
        assert world.default_target(FaultKind.FRONTEND_FAILURE) == "fe0"

    def test_rate_scales_with_nodes(self):
        world = build_world(version("COOP").with_nodes(8), SMALL)
        assert world.offered_rate == pytest.approx(2 * SMALL.coop_rate)

    def test_catalog_counts_match_cluster(self):
        world = build_world(version("FE-X"), SMALL)
        assert world.catalog[FaultKind.NODE_CRASH].count == 5
        assert world.catalog[FaultKind.SCSI_TIMEOUT].count == 10

    def test_host_and_server_lookup(self):
        world = build_world(version("COOP"), SMALL)
        assert world.host_by_name("n2").node_id == 2
        assert world.server_on("n2").node_id == 2
        with pytest.raises(KeyError):
            world.host_by_name("zz")
