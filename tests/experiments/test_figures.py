"""Figure plumbing, tested against stubbed quantifications (no campaigns)."""

import pytest

from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.quantify import QuantifyConfig, VersionAvailability
from repro.core.template import STAGE_NAMES, SevenStageTemplate, Stage
from repro.experiments import figures
from repro.experiments.configs import version
from repro.faults.faultload import table1_catalog
from repro.faults.types import FaultKind


def make_va(name, normal=230.0, stall=0.0, degraded=0.7, operator=False):
    spec = version(name)
    kinds = [FaultKind.LINK_DOWN, FaultKind.SWITCH_DOWN, FaultKind.SCSI_TIMEOUT,
             FaultKind.NODE_CRASH, FaultKind.NODE_FREEZE, FaultKind.APP_CRASH,
             FaultKind.APP_HANG]
    if spec.frontend:
        kinds.append(FaultKind.FRONTEND_FAILURE)
    templates = {}
    for kind in kinds:
        stages = {n: Stage(n, 0.0, normal) for n in STAGE_NAMES}
        stages["A"] = Stage("A", 15.0, stall * normal)
        stages["C"] = Stage("C", 0.0, degraded * normal, provenance="supplied")
        stages["E"] = Stage("E", 0.0, degraded * normal, provenance="supplied")
        templates[kind] = SevenStageTemplate(
            stages, normal, normal, version=name, fault=kind.value,
            self_recovered=not operator)
    catalog = spec.transform_catalog(table1_catalog(
        n_nodes=spec.server_count, with_frontend=spec.frontend))
    result = AvailabilityModel(catalog, EnvironmentParams()).evaluate(
        templates, normal, normal, version=name)
    return VersionAvailability(spec=spec, result=result, templates=templates,
                               traces={}, normal_tput=normal, offered_rate=normal)


class StubEvaluation(figures.Evaluation):
    """Evaluation whose quantifications are canned."""

    PROFILES = {
        "INDEP": dict(degraded=0.75, operator=False),
        "FE-X-INDEP": dict(degraded=0.95, operator=False),
        "COOP": dict(degraded=0.6, operator=True),
        "FE-X": dict(degraded=0.8, operator=True),
        "MEM": dict(degraded=0.8, operator=False),
        "QMON": dict(degraded=0.85, operator=True),
        "MQ": dict(degraded=0.9, operator=False),
        "FME": dict(degraded=0.95, operator=False),
        "FME-NOFE": dict(degraded=0.8, operator=False),
        "S-FME": dict(degraded=0.96, operator=False),
        "C-MON": dict(degraded=0.97, operator=False),
    }

    def __init__(self):
        super().__init__(QuantifyConfig.quick())

    def va(self, name):
        if name not in self._va:
            self._va[name] = make_va(name, **self.PROFILES[name])
        return self._va[name]

    def fault_free(self, name):
        return {"throughput": 230.0 if "INDEP" not in name else 75.0,
                "offered": 230.0, "availability": 1.0}


@pytest.fixture
def ev():
    return StubEvaluation()


class TestFigurePlumbing:
    def test_fig1a_rows_and_ratio(self, ev):
        out = figures.fig1a(ev)
        assert [r["version"] for r in out.rows] == ["INDEP", "FE-X-INDEP", "COOP"]
        assert "COOP/INDEP" in out.text

    def test_fig1b_configs(self, ev):
        out = figures.fig1b(ev)
        assert [r["config"] for r in out.rows] == ["COOP", "HW", "SW", "SW+HW"]
        assert all(r["unavailability"] >= 0 for r in out.rows)

    def test_fig2_stage_table(self, ev):
        out = figures.fig2(ev)
        assert [r["stage"] for r in out.rows] == list(STAGE_NAMES)

    def test_fig6_hardware_ladder(self, ev):
        out = figures.fig6(ev)
        u = {r["config"]: r["unavailability"] for r in out.rows}
        assert set(u) == {"COOP", "FE-X", "RAID+switch", "All HW"}
        assert u["RAID+switch"] <= u["COOP"]

    def test_fig7_predicted_and_measured(self, ev):
        out = figures.fig7(ev)
        assert len(out.rows) == len(figures.FIG7_VERSIONS)
        for row in out.rows:
            assert row["predicted_unavail"] >= 0
            assert row["measured_unavail"] >= 0

    def test_fig8_variants(self, ev):
        out = figures.fig8(ev)
        labels = [r["config"] for r in out.rows]
        assert labels == ["FME", "S-FME", "C-MON", "X-SW", "X-SW-RAID"]
        u = {r["config"]: r["unavailability"] for r in out.rows}
        assert u["X-SW"] <= u["C-MON"]

    def test_fig9_scaled_model_only(self, ev):
        out = figures.fig9(ev, measure_direct=False)
        labels = [r["config"] for r in out.rows]
        assert labels == ["FME-4 (measured)", "FME-8 (scaled model)",
                          "FME-16 (scaled model)"]
        u = [r["unavailability"] for r in out.rows]
        assert all(x > 0 for x in u)

    def test_fig10_scaling_growth(self, ev):
        out = figures.fig10(ev)
        u = [r["unavailability"] for r in out.rows]
        # COOP-style templates (whole-cluster stalls + operator resets)
        # must grow with cluster size.
        assert u[1] > u[0] and u[2] > u[1]

    def test_table1_is_table1(self, ev):
        out = figures.table1(ev)
        assert len(out.rows) == 8

    def test_table2_counts_real_source(self, ev):
        out = figures.table2(ev)
        assert all(r["ncsl"] > 50 for r in out.rows)

    def test_ncsl_counts_noncomment_lines(self):
        def sample():
            # a comment
            x = 1
            return x

        assert figures.ncsl_of(sample) == 3  # def, assignment, return

    def test_predicted_uses_coop_only(self, ev):
        pred = ev.predicted("FME")
        assert pred.version == "FME(pred)"
        assert 0.0 <= pred.availability <= 1.0
