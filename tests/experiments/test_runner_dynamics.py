"""World-level dynamics: operator reset and large-cluster builds."""

import pytest

from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.experiments.runner import build_world

pytestmark = pytest.mark.slow


class TestOperatorReset:
    def test_reset_reforms_a_splintered_cluster(self):
        from repro.faults.types import FaultKind

        world = build_world(version("COOP"), SMALL)
        env = world.env
        env.run(until=90.0)
        world.injector.inject_for(FaultKind.NODE_FREEZE, "n1", duration=60.0)
        env.run(until=180.0)
        assert sorted(world.server_on("n1").coop) == [1]  # splintered
        world.operator_reset()
        env.run(until=260.0)
        for srv in world.servers:
            assert sorted(srv.coop) == [0, 1, 2, 3]
        rate = world.stats.series.mean_rate(240.0, 260.0)
        assert rate > 0.8 * world.offered_rate

    def test_reset_skips_down_hosts(self):
        world = build_world(version("COOP"), SMALL)
        env = world.env
        env.run(until=90.0)
        world.host_by_name("n2").crash()
        world.operator_reset()
        env.run(until=140.0)
        up = [s for s in world.servers if s.host.is_up]
        for srv in up:
            assert sorted(srv.coop) == [0, 1, 3]


class TestLargeClusterBuild:
    def test_dataset_scales_with_nodes(self):
        w4 = build_world(version("COOP"), SMALL)
        w8 = build_world(version("COOP").with_nodes(8), SMALL)
        assert w8.servers[0].trace.n_files == 2 * w4.servers[0].trace.n_files
        assert w8.offered_rate == 2 * w4.offered_rate
        assert len(w8.hosts) == 8

    def test_eight_node_cluster_serves_scaled_load(self):
        world = build_world(version("COOP").with_nodes(8), SMALL)
        world.env.run(until=100.0)
        win = world.stats.window(75.0, 100.0)
        assert win["availability"] > 0.97
