"""Sweep harness plumbing (cheap measurements only)."""

from dataclasses import replace

import pytest

from repro.experiments.profiles import SMALL
from repro.experiments.sweep import Sweep, SweepResult, grid


def cache_knob(profile, value):
    return replace(profile, press=profile.press.with_(cache_files=value))


def rate_knob(profile, value):
    return replace(profile, coop_rate=value)


def fake_measure(config):
    """Deterministic pseudo-measurement derived from the knobs."""
    press = config.profile.press
    return {
        "capacity": float(press.cache_files),
        "load": config.profile.coop_rate,
        "util": config.profile.coop_rate / (press.cache_files * 10.0),
    }


class TestSweep:
    def test_rows_follow_values(self):
        sweep = Sweep("cache", values=[60, 120, 240], apply=cache_knob)
        result = sweep.run(fake_measure)
        assert [r["cache"] for r in result.rows] == [60, 120, 240]
        assert result.column("capacity") == [60.0, 120.0, 240.0]

    def test_monotone_checks(self):
        sweep = Sweep("cache", values=[60, 120, 240], apply=cache_knob)
        result = sweep.run(fake_measure)
        assert result.monotone("capacity", increasing=True)
        assert result.monotone("util", increasing=False)
        assert not result.monotone("capacity", increasing=False)

    def test_config_for_applies_knob(self):
        sweep = Sweep("cache", values=[60], apply=cache_knob)
        config = sweep.config_for(60)
        assert config.profile.press.cache_files == 60
        assert SMALL.press.cache_files == 120  # base untouched

    def test_quick_flag_selects_campaign(self):
        quick = Sweep("c", [60], cache_knob, quick=True).config_for(60)
        full = Sweep("c", [60], cache_knob, quick=False).config_for(60)
        assert quick.campaign.warmup < full.campaign.warmup

    def test_text_rendering(self):
        result = Sweep("cache", [60, 120], cache_knob).run(fake_measure)
        text = result.text()
        assert "cache" in text and "util" in text
        assert len(text.splitlines()) == 3

    def test_empty(self):
        result = SweepResult("x", [])
        assert "no rows" in result.text()

    def test_monotone_needs_two_rows(self):
        # a 0/1-point sweep has no trend; the old vacuous True let
        # ablation assertions pass against an empty table
        with pytest.raises(ValueError, match="at least two rows"):
            SweepResult("x", []).monotone("capacity")
        one = Sweep("cache", values=[60], apply=cache_knob).run(fake_measure)
        with pytest.raises(ValueError, match="at least two rows"):
            one.monotone("capacity")

    def test_parallel_rows_match_serial(self):
        sweep = Sweep("cache", values=[60, 120, 240], apply=cache_knob)
        serial = sweep.run(fake_measure)
        parallel = sweep.run(fake_measure, jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.text() == serial.text()


class TestGrid:
    def test_cartesian_product(self):
        a = Sweep("cache", [60, 120], cache_knob)
        b = Sweep("rate", [100.0, 200.0], rate_knob)
        result = grid(a, b, fake_measure)
        assert len(result.rows) == 4
        combos = {(r["cache"], r["rate"]) for r in result.rows}
        assert combos == {(60, 100.0), (60, 200.0), (120, 100.0), (120, 200.0)}

    def test_grid_text(self):
        a = Sweep("cache", [60], cache_knob)
        b = Sweep("rate", [100.0], rate_knob)
        text = grid(a, b, fake_measure).text()
        assert "cache" in text and "rate" in text
