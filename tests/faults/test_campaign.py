"""Single-fault campaign driver against a scripted fake world."""

import pytest

from repro.faults.campaign import CampaignConfig, SingleFaultCampaign
from repro.faults.injector import FaultInjector
from repro.faults.types import FaultKind
from repro.hardware.host import Host
from repro.sim.series import MarkerLog, ThroughputSeries


class ScriptedWorld:
    """A fake deployment whose throughput follows its fault state."""

    def __init__(self, env, normal_rate=100.0, faulty_rate=20.0,
                 recovers_alone=True):
        self.env = env
        self.markers = MarkerLog()
        self.version = "scripted"
        self.offered_rate = normal_rate
        self._normal = normal_rate
        self._faulty = faulty_rate
        self._recovers_alone = recovers_alone
        self._healthy = True
        self._was_reset = False

        class Stats:
            series = ThroughputSeries()

        self.stats = Stats()
        host = Host(env, "n1", 1)
        self.injector = FaultInjector(env, {"n1": host}, markers=self.markers)
        env.process(self._serve(), name="scripted-server")

    def _rate(self):
        if self._healthy:
            return self._normal
        return self._faulty

    def _serve(self):
        while True:
            yield self.env.timeout(1.0 / max(self._rate(), 1e-9))
            self.stats.series.record(self.env.now)
            active = self.injector.active_faults()
            if active:
                self._healthy = False
            elif self._recovers_alone or self._was_reset:
                self._healthy = True

    def operator_reset(self):
        self._was_reset = True


@pytest.fixture
def cfg():
    return CampaignConfig(warmup=30.0, normal_window=10.0, fault_active=20.0,
                          post_repair_observe=20.0, reset_duration=5.0,
                          post_reset_observe=15.0)


class TestCampaign:
    def test_timeline_and_normal_measurement(self, env, cfg):
        world = ScriptedWorld(env)
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        assert trace.t_inject == pytest.approx(30.0)
        assert trace.t_repair == pytest.approx(50.0)
        assert trace.normal_tput == pytest.approx(100.0, rel=0.05)

    def test_self_recovering_world_gets_no_reset(self, env, cfg):
        world = ScriptedWorld(env, recovers_alone=True)
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        assert trace.t_reset is None

    def test_stuck_world_gets_operator_reset(self, env, cfg):
        world = ScriptedWorld(env, recovers_alone=False)
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        assert trace.t_reset is not None
        assert world._was_reset
        assert trace.t_end > trace.t_reset

    def test_markers_shared_with_injector(self, env, cfg):
        world = ScriptedWorld(env)
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        assert trace.markers.first("fault_injected") == pytest.approx(30.0)
        assert trace.markers.first("fault_repaired") == pytest.approx(50.0)

    def test_degraded_rate_visible_in_trace(self, env, cfg):
        world = ScriptedWorld(env, faulty_rate=10.0)
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        during = trace.rate(trace.t_inject + 2, trace.t_repair)
        assert during == pytest.approx(10.0, rel=0.25)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(warmup=10.0, normal_window=20.0)
        with pytest.raises(ValueError):
            CampaignConfig(fault_active=-1.0)

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.5])
    def test_operator_threshold_range_checked(self, threshold):
        with pytest.raises(ValueError, match="operator_threshold"):
            CampaignConfig(operator_threshold=threshold)

    def test_operator_threshold_bounds_accepted(self):
        assert CampaignConfig(operator_threshold=1.0).operator_threshold == 1.0
        assert CampaignConfig(operator_threshold=0.01).operator_threshold == 0.01

    def test_t_detect_uses_first_marker_after_injection(self, env, cfg):
        world = ScriptedWorld(env)
        world.markers.mark(5.0, "detected", "stale")
        trace = SingleFaultCampaign(world, cfg).run(FaultKind.NODE_FREEZE, "n1")
        assert trace.t_detect is None  # stale marker ignored
        world.markers.mark(trace.t_inject + 3.0, "detected", "real")
        assert trace.t_detect == pytest.approx(trace.t_inject + 3.0)
