"""Fault catalog (Table 1) and its transforms."""

import pytest

from repro.faults.faultload import (
    HOUR,
    MINUTE,
    MONTH,
    WEEK,
    YEAR,
    FaultCatalog,
    FaultRate,
    table1_catalog,
)
from repro.faults.types import ALL_FAULT_KINDS, FaultKind


class TestTable1:
    def test_values_match_paper(self):
        cat = table1_catalog(n_nodes=4, with_frontend=True)
        assert cat[FaultKind.LINK_DOWN] == FaultRate(FaultKind.LINK_DOWN, 6 * MONTH, 3 * MINUTE, 4)
        assert cat[FaultKind.SWITCH_DOWN].mttf == YEAR
        assert cat[FaultKind.SWITCH_DOWN].count == 1
        assert cat[FaultKind.SCSI_TIMEOUT].count == 8
        assert cat[FaultKind.SCSI_TIMEOUT].mttr == HOUR
        assert cat[FaultKind.NODE_CRASH].mttf == 2 * WEEK
        assert cat[FaultKind.APP_CRASH].mttf == 2 * MONTH
        assert cat[FaultKind.FRONTEND_FAILURE].count == 1

    def test_app_failures_combine_to_one_month(self):
        # "Application hang and crash together represent an MTTF of 1 month"
        cat = table1_catalog()
        combined_rate = (cat[FaultKind.APP_CRASH].class_rate
                         + cat[FaultKind.APP_HANG].class_rate) / 4
        assert combined_rate == pytest.approx(1 / MONTH)

    def test_frontend_only_when_requested(self):
        assert FaultKind.FRONTEND_FAILURE not in table1_catalog()
        assert FaultKind.FRONTEND_FAILURE in table1_catalog(with_frontend=True)

    def test_node_count_scales_rows(self):
        cat = table1_catalog(n_nodes=8)
        assert cat[FaultKind.NODE_CRASH].count == 8
        assert cat[FaultKind.SCSI_TIMEOUT].count == 16
        assert cat[FaultKind.SWITCH_DOWN].count == 1


class TestValidation:
    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            FaultRate(FaultKind.NODE_CRASH, 0.0, 1.0, 1)
        with pytest.raises(ValueError):
            FaultRate(FaultKind.NODE_CRASH, 1.0, -1.0, 1)

    def test_rejects_duplicates(self):
        rate = FaultRate(FaultKind.NODE_CRASH, 1.0, 1.0, 1)
        with pytest.raises(ValueError):
            FaultCatalog([rate, rate])

    def test_class_rate(self):
        rate = FaultRate(FaultKind.NODE_CRASH, 100.0, 1.0, 4)
        assert rate.class_rate == pytest.approx(0.04)


class TestTransforms:
    def test_with_raid_improves_scsi_only(self):
        cat = table1_catalog()
        raided = cat.with_raid()
        assert raided[FaultKind.SCSI_TIMEOUT].mttf > 100 * cat[FaultKind.SCSI_TIMEOUT].mttf
        assert raided[FaultKind.NODE_CRASH] == cat[FaultKind.NODE_CRASH]

    def test_with_backup_switch(self):
        cat = table1_catalog()
        sw = cat.with_backup_switch()
        assert sw[FaultKind.SWITCH_DOWN].mttf > 1000 * YEAR

    def test_with_redundant_frontend_noop_without_fe(self):
        cat = table1_catalog()
        assert cat.with_redundant_frontend() is cat

    def test_scale_counts_selected_kinds(self):
        cat = table1_catalog().scale_counts(2, [FaultKind.NODE_CRASH])
        assert cat[FaultKind.NODE_CRASH].count == 8
        assert cat[FaultKind.NODE_FREEZE].count == 4

    def test_without(self):
        cat = table1_catalog().without(FaultKind.SWITCH_DOWN)
        assert FaultKind.SWITCH_DOWN not in cat
        assert FaultKind.NODE_CRASH in cat

    def test_replace_rate(self):
        cat = table1_catalog().replace_rate(FaultKind.NODE_CRASH, mttr=60.0)
        assert cat[FaultKind.NODE_CRASH].mttr == 60.0

    def test_iteration_covers_all(self):
        cat = table1_catalog(with_frontend=True)
        assert set(cat.kinds()) == set(ALL_FAULT_KINDS)
