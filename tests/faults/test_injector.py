"""Fault injector mechanics against the hardware substrate."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.types import FaultComponent, FaultKind
from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host, NodeService
from repro.net.network import ClusterNetwork


class DummyApp(NodeService):
    service_name = "press"

    def __init__(self, host):
        super().__init__(host)
        self.started = 0

    def start(self):
        if self.fault_latched or not self.group.alive or not self.host.is_up:
            return
        self.started += 1


class DummyFrontend:
    def __init__(self):
        self.down = False

    def fail(self):
        self.down = True

    def repair(self):
        self.down = False


@pytest.fixture
def world(env, markers):
    net = ClusterNetwork(env)
    hosts = {}
    disks = {}
    for i in range(2):
        h = Host(env, f"n{i}", i)
        net.attach(h)
        d = Disk(env, h, 0, DiskParams())
        DummyApp(h)
        h.start_all()
        hosts[h.name] = h
        disks[d.name] = d
    fe = DummyFrontend()
    injector = FaultInjector(
        env, hosts, network=net, disks=disks,
        frontends={"fe0": fe},
        app_of=lambda h: h.services["press"],
        markers=markers,
    )
    return injector, hosts, disks, net, fe


class TestInjectRepair:
    def test_link_down(self, world):
        injector, hosts, _, net, _ = world
        f = injector.inject(FaultKind.LINK_DOWN, "n0")
        assert not net.link(hosts["n0"]).up
        injector.repair(f)
        assert net.link(hosts["n0"]).up

    def test_switch_down(self, world):
        injector, _, _, net, _ = world
        f = injector.inject(FaultKind.SWITCH_DOWN, "switch0")
        assert not net.switch.up
        injector.repair(f)
        assert net.switch.up

    def test_scsi(self, world):
        injector, _, disks, _, _ = world
        f = injector.inject(FaultKind.SCSI_TIMEOUT, "n0.disk0")
        assert disks["n0.disk0"].faulty
        injector.repair(f)
        assert not disks["n0.disk0"].faulty

    def test_node_crash_and_boot(self, world):
        injector, hosts, _, _, _ = world
        app = hosts["n0"].services["press"]
        f = injector.inject(FaultKind.NODE_CRASH, "n0")
        assert not hosts["n0"].is_up
        injector.repair(f)
        assert hosts["n0"].is_up
        assert app.started == 2

    def test_node_freeze(self, world):
        injector, hosts, _, _, _ = world
        f = injector.inject(FaultKind.NODE_FREEZE, "n0")
        assert hosts["n0"].is_frozen and not hosts["n0"].pingable
        injector.repair(f)
        assert not hosts["n0"].is_frozen

    def test_app_crash_latched_until_repair(self, world):
        injector, hosts, _, _, _ = world
        app = hosts["n0"].services["press"]
        f = injector.inject(FaultKind.APP_CRASH, "n0")
        assert app.fault_latched and not app.group.alive
        app.force_restart()  # e.g. FME tries: must fail
        assert app.started == 1
        injector.repair(f)
        assert app.started == 2 and not app.fault_latched

    def test_app_hang(self, world):
        injector, hosts, _, _, _ = world
        app = hosts["n0"].services["press"]
        f = injector.inject(FaultKind.APP_HANG, "n0")
        assert app.group.frozen
        injector.repair(f)
        assert not app.group.frozen

    def test_frontend(self, world):
        injector, _, _, _, fe = world
        f = injector.inject(FaultKind.FRONTEND_FAILURE, "fe0")
        assert fe.down
        injector.repair(f)
        assert not fe.down


class TestBookkeeping:
    def test_double_injection_rejected(self, world):
        injector, *_ = world
        injector.inject(FaultKind.NODE_CRASH, "n0")
        with pytest.raises(ValueError):
            injector.inject(FaultKind.NODE_CRASH, "n0")

    def test_markers_recorded(self, env, world, markers):
        injector, *_ = world
        f = injector.inject(FaultKind.NODE_CRASH, "n0")
        injector.repair(f)
        assert markers.first("fault_injected") == 0.0
        assert markers.first("fault_repaired") == 0.0
        (_, comp), = markers.all("fault_injected")
        assert comp == FaultComponent(FaultKind.NODE_CRASH, "n0")

    def test_inject_for_schedules_repair(self, env, world):
        injector, hosts, *_ = world
        injector.inject_for(FaultKind.NODE_FREEZE, "n0", duration=5.0)
        env.run(until=4.9)
        assert hosts["n0"].is_frozen
        env.run(until=5.1)
        assert not hosts["n0"].is_frozen

    def test_active_faults(self, world):
        injector, *_ = world
        f = injector.inject(FaultKind.NODE_CRASH, "n0")
        assert injector.active_faults() == [f]
        injector.repair(f)
        assert injector.active_faults() == []

    def test_repair_idempotent(self, world):
        injector, *_ = world
        f = injector.inject(FaultKind.NODE_CRASH, "n0")
        injector.repair(f)
        injector.repair(f)

    def test_unknown_targets(self, world):
        injector, *_ = world
        with pytest.raises(KeyError):
            injector.inject(FaultKind.NODE_CRASH, "nope")
        with pytest.raises(KeyError):
            injector.inject(FaultKind.SCSI_TIMEOUT, "nope")
        with pytest.raises(KeyError):
            injector.inject(FaultKind.FRONTEND_FAILURE, "nope")
