"""Injector edge cases and illegal transitions."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.types import FaultKind
from repro.hardware.host import Host
from repro.sim.kernel import SimulationError


@pytest.fixture
def world(env, markers):
    hosts = {f"n{i}": Host(env, f"n{i}", i) for i in range(2)}
    injector = FaultInjector(env, hosts, markers=markers)
    return injector, hosts


class TestEdges:
    def test_freeze_a_crashed_node_rejected(self, world):
        injector, hosts = world
        injector.inject(FaultKind.NODE_CRASH, "n0")
        with pytest.raises(SimulationError):
            injector.inject(FaultKind.NODE_FREEZE, "n0")

    def test_same_kind_on_different_targets_allowed(self, world):
        injector, hosts = world
        injector.inject(FaultKind.NODE_CRASH, "n0")
        injector.inject(FaultKind.NODE_CRASH, "n1")
        assert len(injector.active_faults()) == 2

    def test_reinjection_after_repair_allowed(self, world):
        injector, hosts = world
        fault = injector.inject(FaultKind.NODE_FREEZE, "n0")
        injector.repair(fault)
        fault2 = injector.inject(FaultKind.NODE_FREEZE, "n0")
        assert fault2.active

    def test_network_fault_without_network_rejected(self, world):
        injector, hosts = world
        with pytest.raises(ValueError):
            injector.inject(FaultKind.LINK_DOWN, "n0")
        with pytest.raises(ValueError):
            injector.inject(FaultKind.SWITCH_DOWN, "switch0")

    def test_app_fault_without_resolver_rejected(self, world):
        injector, hosts = world
        with pytest.raises(ValueError):
            injector.inject(FaultKind.APP_CRASH, "n0")

    def test_handle_tracks_times(self, env, world):
        injector, hosts = world
        env.run(until=5.0)
        fault = injector.inject(FaultKind.NODE_FREEZE, "n0")
        assert fault.injected_at == 5.0 and fault.active
        env.run(until=9.0)
        injector.repair(fault)
        assert fault.repaired_at == 9.0 and not fault.active

    def test_crash_then_boot_then_freeze(self, env, world):
        injector, hosts = world
        fault = injector.inject(FaultKind.NODE_CRASH, "n0")
        injector.repair(fault)  # boots the node
        injector.inject(FaultKind.NODE_FREEZE, "n0")
        assert hosts["n0"].is_frozen
