"""The declarative abstract fault model (Section 4.5)."""

from repro.ha.faultmodel import (
    PRESS_FAULT_MODEL,
    AbstractFault,
    EnforcementAction,
    FaultModel,
    Symptoms,
)


class TestPressModel:
    def test_covers_the_paper_vocabulary(self):
        for fault in (AbstractFault.NODE_CRASH, AbstractFault.APP_CRASH,
                      AbstractFault.NODE_UNREACHABLE):
            assert PRESS_FAULT_MODEL.covers(fault)

    def test_healthy_symptoms_no_action(self):
        s = Symptoms(disks_ok=True, app_responsive=True, confirmations=5)
        assert PRESS_FAULT_MODEL.enforce(s) is EnforcementAction.NONE

    def test_disk_dead_app_stuck_offlines_node(self):
        s = Symptoms(disks_ok=False, app_responsive=False, confirmations=2)
        assert PRESS_FAULT_MODEL.enforce(s) is EnforcementAction.OFFLINE_NODE

    def test_app_stuck_disks_fine_restarts_app(self):
        s = Symptoms(disks_ok=True, app_responsive=False, confirmations=2)
        assert PRESS_FAULT_MODEL.enforce(s) is EnforcementAction.RESTART_APP

    def test_disk_dead_but_app_responsive_waits(self):
        """Paper: FME acts only when the disk failure has led to an
        application hang or crash."""
        s = Symptoms(disks_ok=False, app_responsive=True, confirmations=5)
        assert PRESS_FAULT_MODEL.enforce(s) is EnforcementAction.NONE

    def test_unconfirmed_symptoms_not_enforced(self):
        s = Symptoms(disks_ok=False, app_responsive=False, confirmations=1)
        assert PRESS_FAULT_MODEL.enforce(s) is EnforcementAction.NONE


class TestCustomModels:
    def test_model_without_node_crash_falls_back_to_restart(self):
        model = FaultModel("appsonly",
                           handled=frozenset({AbstractFault.APP_CRASH}))
        s = Symptoms(disks_ok=False, app_responsive=False, confirmations=2)
        assert model.enforce(s) is EnforcementAction.RESTART_APP

    def test_model_without_app_crash_cannot_restart(self):
        model = FaultModel("nothing", handled=frozenset())
        s = Symptoms(disks_ok=True, app_responsive=False, confirmations=2)
        assert model.enforce(s) is EnforcementAction.NONE

    def test_min_confirmations_respected(self):
        model = FaultModel("patient",
                           handled=frozenset({AbstractFault.APP_CRASH}),
                           min_confirmations=4)
        s3 = Symptoms(disks_ok=True, app_responsive=False, confirmations=3)
        s4 = Symptoms(disks_ok=True, app_responsive=False, confirmations=4)
        assert model.enforce(s3) is EnforcementAction.NONE
        assert model.enforce(s4) is EnforcementAction.RESTART_APP

    def test_symptoms_healthy_property(self):
        assert Symptoms(True, True).healthy
        assert not Symptoms(False, True).healthy
        assert not Symptoms(True, False).healthy
