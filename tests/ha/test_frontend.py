"""Front-end request distribution + Mon monitoring."""

import pytest

from repro.ha.frontend import FrontEnd, FrontEndConfig, MonMode
from repro.hardware.host import Host, NodeService
from repro.workload.client import Request


class FakeBackend(NodeService):
    service_name = "press"

    def __init__(self, host):
        super().__init__(host)
        self._listening = True

    def start(self):
        pass

    @property
    def listening(self):
        return self._listening and self.group.alive and self.host.is_up


@pytest.fixture
def world(env, markers):
    hosts = [Host(env, f"n{i}", i) for i in range(3)]
    backends = [FakeBackend(h) for h in hosts]
    fe_host = Host(env, "fe0", 100)
    fe = FrontEnd(env, fe_host, backends, FrontEndConfig(), markers)
    return hosts, backends, fe


def picks(env, fe, n=6):
    return [fe.pick(Request(env, 0, 1)) for _ in range(n)]


class TestRouting:
    def test_round_robin(self, env, world):
        hosts, backends, fe = world
        chosen = picks(env, fe, 6)
        assert chosen == backends * 2

    def test_skips_detected_down_nodes(self, env, world):
        hosts, backends, fe = world
        hosts[0].crash()
        env.run(until=16)  # 3 pings x 5 s
        assert backends[0] not in picks(env, fe, 6)
        assert not fe.is_routed(backends[0])

    def test_detection_takes_three_lost_pings(self, env, world):
        hosts, backends, fe = world
        hosts[0].crash()
        env.run(until=11)  # only 2 probes so far
        assert backends[0] in picks(env, fe, 6)

    def test_node_readmitted_after_recovery(self, env, world):
        hosts, backends, fe = world
        hosts[0].crash()
        env.run(until=16)
        hosts[0].boot()
        env.run(until=22)
        assert backends[0] in picks(env, fe, 6)

    def test_ping_mode_blind_to_app_crash(self, env, world):
        hosts, backends, fe = world
        backends[0].inject_crash()
        env.run(until=30)
        assert backends[0] in picks(env, fe, 6)  # Mon pings: OS still answers

    def test_empty_table_returns_none(self, env, world):
        hosts, backends, fe = world
        for h in hosts:
            h.crash()
        env.run(until=16)
        assert fe.pick(Request(env, 0, 1)) is None


class TestConnectionMonitoring:
    @pytest.fixture
    def cmon(self, env, markers):
        hosts = [Host(env, f"n{i}", i) for i in range(2)]
        backends = [FakeBackend(h) for h in hosts]
        fe_host = Host(env, "fe0", 100)
        cfg = FrontEndConfig(mode=MonMode.CONNECTION)
        return hosts, backends, FrontEnd(env, fe_host, backends, cfg, markers)

    def test_detects_app_crash_fast(self, env, cmon):
        hosts, backends, fe = cmon
        backends[0].inject_crash()
        env.run(until=2.5)  # 2 probes x 1 s
        assert backends[0] not in picks(env, fe, 4)

    def test_readmits_after_app_restart(self, env, cmon):
        hosts, backends, fe = cmon
        backends[0].inject_crash()
        env.run(until=3)
        backends[0].repair_crash()
        env.run(until=5)
        assert backends[0] in picks(env, fe, 4)


class TestFrontendFailure:
    def test_failure_blocks_routing(self, env, world):
        _, _, fe = world
        fe.fail()
        assert fe.pick(Request(env, 0, 1)) is None

    def test_redundant_takeover(self, env, world, markers):
        _, backends, fe = world
        fe.fail()
        env.run(until=9)
        assert fe.pick(Request(env, 0, 1)) is None
        env.run(until=11)
        assert fe.pick(Request(env, 0, 1)) in backends
        assert markers.first("fe_takeover") == pytest.approx(10.0)

    def test_non_redundant_stays_down(self, env, markers):
        hosts = [Host(env, "n0", 0)]
        backends = [FakeBackend(hosts[0])]
        fe = FrontEnd(env, Host(env, "fe0", 100), backends,
                      FrontEndConfig(redundant=False), markers)
        fe.fail()
        env.run(until=60)
        assert fe.pick(Request(env, 0, 1)) is None
        fe.repair()
        assert fe.pick(Request(env, 0, 1)) is backends[0]

    def test_fail_idempotent(self, world):
        _, _, fe = world
        fe.fail()
        fe.fail()


class TestSfmeHooks:
    def test_force_offline_overrides_mon(self, env, world):
        hosts, backends, fe = world
        fe.force_offline(backends[1])
        assert backends[1] not in picks(env, fe, 6)
        fe.allow_online(backends[1])
        assert backends[1] in picks(env, fe, 6)
