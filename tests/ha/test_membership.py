"""Membership service: exclusion, join, partitions, merge, divergence."""

import pytest

from repro.ha.membership import (
    MembershipConfig,
    MembershipDaemon,
    MembershipNetwork,
    bootstrap_membership,
)
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork


@pytest.fixture
def cluster(env, markers):
    net = ClusterNetwork(env)
    mnet = MembershipNetwork(net)
    hosts, daemons = [], []
    for i in range(4):
        h = Host(env, f"n{i}", i)
        net.attach(h)
        d = MembershipDaemon(h, i, mnet, MembershipConfig(), markers)
        d.start()
        hosts.append(h)
        daemons.append(d)
    bootstrap_membership(daemons)
    return net, hosts, daemons


def views(daemons):
    return [sorted(d.view) for d in daemons]


class TestSteadyState:
    def test_stable_without_faults(self, env, cluster):
        _, _, daemons = cluster
        env.run(until=120)
        assert views(daemons) == [[0, 1, 2, 3]] * 4

    def test_view_published(self, env, cluster):
        _, _, daemons = cluster
        env.run(until=30)
        for d in daemons:
            assert d.shared_view.snapshot() == set(d.view)


class TestExclusion:
    def test_crashed_node_excluded(self, env, cluster):
        _, hosts, daemons = cluster
        env.run(until=10)
        hosts[1].crash()
        env.run(until=60)
        for d in (daemons[0], daemons[2], daemons[3]):
            assert sorted(d.view) == [0, 2, 3]

    def test_detection_within_loss_threshold(self, env, cluster, markers):
        _, hosts, daemons = cluster
        env.run(until=10)
        hosts[1].crash()
        env.run(until=60)
        detect = markers.first("detected")
        assert detect is not None and detect <= 10 + 3 * 5.0 + 5.0

    def test_frozen_node_excluded_then_rejoins_on_thaw(self, env, cluster):
        _, hosts, daemons = cluster
        env.run(until=10)
        hosts[1].freeze()
        env.run(until=60)
        assert sorted(daemons[0].view) == [0, 2, 3]
        hosts[1].unfreeze()
        env.run(until=160)
        assert views(daemons) == [[0, 1, 2, 3]] * 4

    def test_rebooted_node_rejoins(self, env, cluster):
        _, hosts, daemons = cluster
        env.run(until=10)
        hosts[1].crash()
        env.run(until=60)
        hosts[1].boot()
        env.run(until=120)
        assert views(daemons) == [[0, 1, 2, 3]] * 4

    def test_node_down_report_triggers_exclusion(self, env, cluster):
        _, hosts, daemons = cluster
        env.run(until=10)
        hosts[1].crash()
        daemons[0].report_down(1)
        env.run(until=20)
        assert 1 not in daemons[0].view


class TestPartition:
    def test_partition_forms_subgroups(self, env, cluster):
        net, hosts, daemons = cluster
        env.run(until=10)
        net.link(hosts[3]).up = False
        env.run(until=80)
        assert sorted(daemons[0].view) == [0, 1, 2]
        assert sorted(daemons[3].view) == [3]

    def test_partition_heals_and_merges(self, env, cluster):
        net, hosts, daemons = cluster
        env.run(until=10)
        net.link(hosts[3]).up = False
        env.run(until=80)
        net.link(hosts[3]).up = True
        env.run(until=200)
        assert views(daemons) == [[0, 1, 2, 3]] * 4

    def test_switch_down_forms_singletons(self, env, cluster):
        net, hosts, daemons = cluster
        env.run(until=10)
        net.switch.up = False
        env.run(until=120)
        assert views(daemons) == [[0], [1], [2], [3]]

    def test_switch_repair_reforms_full_group(self, env, cluster):
        net, hosts, daemons = cluster
        env.run(until=10)
        net.switch.up = False
        env.run(until=120)
        net.switch.up = True
        env.run(until=400)
        assert views(daemons) == [[0, 1, 2, 3]] * 4


class TestDivergence:
    def test_daemon_survives_app_level_faults(self, env, cluster):
        """The membership view is blind to application death — the exact
        divergence FME exists to resolve (paper Section 4.4)."""
        _, hosts, daemons = cluster
        env.run(until=10)
        # an application crash on n1 does not touch the membd group
        other = hosts[1].add_group("press")
        other.crash()
        env.run(until=60)
        assert views(daemons) == [[0, 1, 2, 3]] * 4

    def test_versions_monotone(self, env, cluster):
        _, hosts, daemons = cluster
        seen = {d.node_id: d.version for d in daemons}
        env.run(until=10)
        hosts[1].crash()
        env.run(until=60)
        hosts[1].boot()
        env.run(until=150)
        for d in daemons:
            assert d.version >= seen[d.node_id]
