"""Membership protocol under adversarial timing."""

from repro.ha.membership import (
    MembershipConfig,
    MembershipDaemon,
    MembershipNetwork,
    bootstrap_membership,
)
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork


def build(env, n=5, markers=None):
    net = ClusterNetwork(env)
    mnet = MembershipNetwork(net)
    hosts, daemons = [], []
    for i in range(n):
        h = Host(env, f"n{i}", i)
        net.attach(h)
        d = MembershipDaemon(h, i, mnet, MembershipConfig(), markers)
        d.start()
        hosts.append(h)
        daemons.append(d)
    bootstrap_membership(daemons)
    return net, hosts, daemons


def consistent(daemons, expect):
    alive = [d for d in daemons if d.group.alive and d.host.is_up]
    return all(sorted(d.view) == sorted(expect) for d in alive)


class TestConcurrentEvents:
    def test_two_simultaneous_crashes(self, env):
        """Both ring neighbours of two victims coordinate exclusions at
        once; the 2PC version ordering must still converge."""
        net, hosts, daemons = build(env)
        env.run(until=10)
        hosts[1].crash()
        hosts[3].crash()
        env.run(until=90)
        assert consistent(daemons, [0, 2, 4])

    def test_crash_during_join(self, env):
        net, hosts, daemons = build(env)
        env.run(until=10)
        hosts[1].crash()
        env.run(until=50)
        hosts[1].boot()
        # another node dies while n1 is mid-rejoin
        hosts[2].crash()
        env.run(until=160)
        assert consistent(daemons, [0, 1, 3, 4])

    def test_rapid_flap(self, env):
        """A node that crashes, reboots, and crashes again must not wedge
        the group."""
        net, hosts, daemons = build(env)
        env.run(until=10)
        hosts[1].crash()
        env.run(until=40)
        hosts[1].boot()
        env.run(until=55)
        hosts[1].crash()
        env.run(until=120)
        assert consistent(daemons, [0, 2, 3, 4])
        hosts[1].boot()
        env.run(until=240)
        assert consistent(daemons, [0, 1, 2, 3, 4])

    def test_three_way_partition_and_heal(self, env):
        net, hosts, daemons = build(env)
        env.run(until=10)
        net.link(hosts[2]).up = False
        net.link(hosts[4]).up = False
        env.run(until=110)
        assert sorted(daemons[0].view) == [0, 1, 3]
        assert sorted(daemons[2].view) == [2]
        assert sorted(daemons[4].view) == [4]
        net.link(hosts[2]).up = True
        net.link(hosts[4]).up = True
        env.run(until=320)
        assert consistent(daemons, [0, 1, 2, 3, 4])

    def test_majority_partition_keeps_lowest_id_group(self, env):
        net, hosts, daemons = build(env)
        env.run(until=10)
        net.switch.up = False
        env.run(until=130)
        net.switch.up = True
        env.run(until=500)
        # merge rule: everyone converges into the group containing n0
        assert consistent(daemons, [0, 1, 2, 3, 4])
        assert sorted(daemons[0].view) == [0, 1, 2, 3, 4]

    def test_view_versions_strictly_increase_per_install(self, env, markers):
        net, hosts, daemons = build(env, markers=markers)
        seen = {d.node_id: [d.version] for d in daemons}

        def snapshot():
            while True:
                yield env.timeout(1.0)
                for d in daemons:
                    if d.version != seen[d.node_id][-1]:
                        seen[d.node_id].append(d.version)

        env.process(snapshot())
        env.run(until=10)
        hosts[1].crash()
        env.run(until=60)
        hosts[1].boot()
        env.run(until=150)
        for versions in seen.values():
            assert versions == sorted(versions)
