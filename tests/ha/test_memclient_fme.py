"""Shared-view client library and the FME daemon."""

import pytest

from repro.ha.fme import FmeConfig, FmeDaemon
from repro.ha.memclient import MembershipClient, SharedView
from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host, NodeService
from repro.sim.kernel import Event


class TestSharedView:
    def test_publish_bumps_version_on_change_only(self):
        v = SharedView()
        v.publish({1, 2})
        ver = v.version
        v.publish({1, 2})
        assert v.version == ver
        v.publish({1})
        assert v.version == ver + 1

    def test_snapshot_is_a_copy(self):
        v = SharedView()
        v.publish({1})
        snap = v.snapshot()
        snap.add(99)
        assert v.members == {1}


class TestMembershipClient:
    def test_callbacks_on_view_changes(self, env):
        view = SharedView()
        view.publish({0, 1})
        ins, outs = [], []
        MembershipClient(env, view, ins.append, outs.append, poll_interval=1.0)
        env.run(until=2)
        assert sorted(ins) == [0, 1]
        view.publish({0, 2})
        env.run(until=4)
        assert 2 in ins and 1 in outs

    def test_node_down_forwarded_to_daemon(self, env):
        class FakeDaemon:
            def __init__(self):
                self.reports = []

            def report_down(self, nid):
                self.reports.append(nid)

        daemon = FakeDaemon()
        client = MembershipClient(env, SharedView(), lambda n: None, lambda n: None,
                                  daemon=daemon)
        client.node_down(3)
        assert daemon.reports == [3]

    def test_stop(self, env):
        view = SharedView()
        ins = []
        client = MembershipClient(env, view, ins.append, lambda n: None)
        client.stop()
        view.publish({5})
        env.run(until=5)
        assert ins == []


class ProbeApp(NodeService):
    """App whose probe responsiveness is directly controllable."""

    service_name = "press"

    def __init__(self, host):
        super().__init__(host)
        self.responsive = True
        self.starts = 0

    def start(self):
        if self.fault_latched or not self.group.alive or not self.host.is_up:
            return
        self.starts += 1
        self.responsive = True

    def on_crash(self):
        self.responsive = False

    def on_hang(self):
        self.responsive = False

    def on_resume(self):
        self.responsive = True

    def http_probe(self):
        ev = Event(self.env)
        if self.responsive and self.group.is_runnable() and self.host.is_up:
            ev.succeed(delay=0.001)
        return ev


@pytest.fixture
def node(env, markers):
    host = Host(env, "n1", 1)
    Disk(env, host, 0, DiskParams(seek_time=0.001, jitter=0.0))
    Disk(env, host, 1, DiskParams(seek_time=0.001, jitter=0.0))
    app = ProbeApp(host)
    fme = FmeDaemon(host, app, FmeConfig(probe_interval=2.0, probe_timeout=0.5,
                                         confirm_delay=0.2, reboot_poll=1.0,
                                         reboot_delay=1.0), markers)
    host.start_all()
    return host, app, fme


class TestFme:
    def test_healthy_node_untouched(self, env, node):
        host, app, fme = node
        env.run(until=30)
        assert fme.enforcements == 0
        assert app.starts == 1

    def test_hang_converted_to_crash_restart(self, env, node, markers):
        host, app, fme = node
        env.run(until=1)
        app.inject_hang()
        env.run(until=10)
        assert fme.enforcements >= 1
        assert markers.first("fme_restart") is not None
        assert app.starts == 2
        assert app.responsive

    def test_disk_fault_takes_node_offline(self, env, node, markers):
        host, app, fme = node
        env.run(until=1)
        host.disks[0].set_faulty()
        app.inject_hang()  # disk death manifests as the app wedging
        env.run(until=12)
        assert markers.first("fme_offline") is not None
        assert not host.is_up

    def test_node_boots_after_disk_repair(self, env, node):
        host, app, fme = node
        env.run(until=1)
        host.disks[0].set_faulty()
        app.inject_hang()
        env.run(until=12)
        assert not host.is_up
        host.disks[0].repair()
        env.run(until=20)
        assert host.is_up
        assert app.starts == 2  # restarted by the boot

    def test_disk_fault_with_responsive_app_waits(self, env, node):
        """Paper: FME only takes the node offline when the disk failure has
        led to an application hang or crash."""
        host, app, fme = node
        env.run(until=1)
        host.disks[0].set_faulty()
        env.run(until=10)
        assert host.is_up  # app still answering probes

    def test_latched_app_crash_not_fixed_by_restart(self, env, node):
        host, app, fme = node
        env.run(until=1)
        app.inject_crash()
        env.run(until=15)
        assert app.starts == 1  # restarts refused while the fault persists
        app.repair_crash()
        env.run(until=20)
        assert app.responsive

    def test_transient_blip_not_enforced(self, env, node):
        """One failed probe followed by recovery must not trigger action."""
        host, app, fme = node
        env.run(until=1.9)
        app.responsive = False

        def recover():
            yield env.timeout(0.25)
            app.responsive = True

        env.process(recover())
        env.run(until=10)
        assert fme.enforcements == 0
