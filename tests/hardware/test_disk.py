"""Disk device model and SCSI-timeout fault mode."""

import pytest

from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host


@pytest.fixture
def host(env):
    return Host(env, "n0", 0)


@pytest.fixture
def disk(env, host):
    return Disk(env, host, 0, DiskParams(seek_time=0.01, jitter=0.0))


def run_io(env, disk, sizes, done_times):
    def body():
        for size in sizes:
            sub = disk.submit(size)
            yield sub.enqueued
            yield sub.done
            done_times.append(env.now)

    env.process(body(), owner=disk.host.os)


class TestServiceTime:
    def test_params_validation_and_determinism(self):
        p = DiskParams(seek_time=0.01, transfer_bandwidth=1e6, jitter=0.0)
        assert p.service_time(10_000) == pytest.approx(0.02)

    def test_jitter_has_unit_mean(self, rngs):
        p = DiskParams(seek_time=0.01, jitter=0.3)
        rng = rngs.stream("d")
        times = [p.service_time(0, rng) for _ in range(5000)]
        assert abs(sum(times) / len(times) - 0.01) < 0.001

    def test_ops_serialize(self, env, disk):
        done = []
        run_io(env, disk, [0, 0, 0], done)
        env.run()
        assert done == pytest.approx([0.01, 0.02, 0.03])
        assert disk.ops_served == 3

    def test_registered_on_host(self, host, disk):
        assert disk in host.disks


class TestScsiTimeout:
    def test_fault_hangs_inflight_and_queued(self, env, disk):
        done = []
        run_io(env, disk, [0, 0, 0], done)
        env.run(until=0.015)
        disk.set_faulty()
        env.run(until=5.0)
        assert done == [0.01]  # only the op completed before the fault
        disk.repair()
        env.run(until=6.0)
        assert len(done) == 3

    def test_fault_mid_service_holds_completion(self, env, disk):
        done = []
        run_io(env, disk, [0], done)
        env.run(until=0.005)
        disk.set_faulty()
        env.run(until=2.0)
        assert done == []
        disk.repair()
        env.run(until=3.0)
        assert len(done) == 1

    def test_set_faulty_idempotent(self, disk):
        disk.set_faulty()
        disk.set_faulty()
        disk.repair()
        disk.repair()
        assert not disk.faulty

    def test_depth_counts_blocked_submitters(self, env, host):
        disk = Disk(env, host, 1, DiskParams(seek_time=1.0, jitter=0.0, queue_capacity=2))
        def body():
            for _ in range(5):
                sub = disk.submit(0)
                yield sub.enqueued
        env.process(body(), owner=host.os)
        env.run(until=0.5)
        assert disk.depth >= 2


class TestHostIntegration:
    def test_host_crash_drops_queue(self, env, host, disk):
        done = []
        run_io(env, disk, [0] * 10, done)
        env.run(until=0.015)
        host.crash()
        env.run(until=5)
        assert len(done) == 1

    def test_boot_respawns_server(self, env, host, disk):
        host.crash()
        host.boot()
        done = []
        run_io(env, disk, [0], done)
        env.run(until=1.0)
        assert len(done) == 1
