"""Host / ProcGroup / NodeService fault transitions."""

import pytest

from repro.hardware.host import Host, NodeService
from repro.sim.kernel import SimulationError
from repro.sim.store import Store


class EchoService(NodeService):
    """Minimal service: counts ticks while running."""

    service_name = "echo"

    def __init__(self, host):
        super().__init__(host)
        self.ticks = 0
        self.starts = 0
        self.crashes = 0
        self.running_flag = False

    def start(self):
        if self.fault_latched or not self.host.is_up or not self.group.alive:
            return
        self.starts += 1
        self.running_flag = True
        self.env.process(self._tick(), owner=self.group)

    def on_crash(self):
        self.crashes += 1
        self.running_flag = False

    def _tick(self):
        while True:
            yield self.env.timeout(1.0)
            self.ticks += 1


@pytest.fixture
def host(env):
    return Host(env, "n0", 0)


@pytest.fixture
def service(host):
    svc = EchoService(host)
    svc.start()
    return svc


class TestHostLifecycle:
    def test_initial_state(self, host):
        assert host.is_up and host.pingable and not host.is_frozen

    def test_duplicate_group_rejected(self, host):
        host.add_group("g")
        with pytest.raises(SimulationError):
            host.add_group("g")

    def test_duplicate_service_rejected(self, env):
        host = Host(env, "n1", 1)
        EchoService(host)
        with pytest.raises(SimulationError):
            EchoService(host)

    def test_crash_stops_everything(self, env, host, service):
        env.run(until=3.5)
        host.crash()
        env.run(until=10)
        assert service.ticks == 3
        assert not host.pingable
        assert service.crashes == 1

    def test_crash_clears_volatile_stores(self, env, host, service):
        store = service.group.own_store(Store(env))
        store.put_nowait("state")
        host.crash()
        assert store.level == 0

    def test_boot_restarts_services(self, env, host, service):
        env.run(until=2.5)
        host.crash()
        host.boot()
        env.run(until=5.5)
        assert service.starts == 2
        assert service.ticks > 2

    def test_boot_hooks_called(self, env, host, service):
        called = []
        host.on_boot_hooks.append(lambda h: called.append(h.name))
        host.crash()
        host.boot()
        assert called == ["n0"]

    def test_freeze_unfreeze(self, env, host, service):
        env.run(until=2.5)
        host.freeze()
        assert not host.pingable
        env.run(until=10)
        assert service.ticks == 2
        host.unfreeze()
        env.run(until=12.5)
        assert service.ticks > 2

    def test_freeze_crashed_host_rejected(self, host):
        host.crash()
        with pytest.raises(SimulationError):
            host.freeze()

    def test_crash_idempotent(self, host, service):
        host.crash()
        host.crash()
        assert service.crashes == 1


class TestAppFaults:
    def test_app_crash_only_kills_the_app(self, env, host, service):
        other = host.add_group("other")
        other_ticks = []

        def other_proc():
            while True:
                yield env.timeout(1.0)
                other_ticks.append(env.now)

        env.process(other_proc(), owner=other)
        env.run(until=2.5)
        service.inject_crash()
        env.run(until=5.5)
        assert service.ticks == 2
        assert len(other_ticks) == 5  # the other process group is untouched
        assert host.pingable  # OS still answers pings

    def test_crash_latch_blocks_restart(self, env, host, service):
        service.inject_crash()
        service.force_restart()
        assert service.starts == 1  # restart refused while latched
        service.repair_crash()
        assert service.starts == 2

    def test_hang_and_resume(self, env, host, service):
        env.run(until=2.5)
        service.inject_hang()
        env.run(until=8)
        assert service.ticks == 2
        service.repair_hang()
        env.run(until=9.6)
        assert service.ticks >= 3

    def test_repair_hang_after_force_restart_is_noop(self, env, host, service):
        service.inject_hang()
        service.force_restart()  # FME converted hang -> crash-restart
        starts = service.starts
        service.repair_hang()  # injector repair arrives later
        assert service.starts == starts
        assert service.group.is_runnable()

    def test_hang_then_node_crash_then_boot(self, env, host, service):
        service.inject_hang()
        host.crash()
        host.boot()
        env.run(until=2.5)
        assert service.running_flag

    def test_running_property(self, env, host, service):
        assert service.running
        service.inject_hang()
        assert not service.running
        assert service.alive  # process exists, just hung
        service.repair_hang()
        assert service.running
