"""Composite-MTTF arithmetic."""

import pytest

from repro.hardware.raid import (
    composite_mttf,
    parallel_mttf,
    redundant_pair_mttf,
    series_mttf,
)

HOUR = 3600.0
YEAR = 365 * 24 * HOUR


class TestSeries:
    def test_divides_by_count(self):
        assert series_mttf(100.0, 4) == 25.0

    def test_single_component_identity(self):
        assert series_mttf(100.0, 1) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            series_mttf(-1.0, 2)
        with pytest.raises(ValueError):
            series_mttf(1.0, 0)


class TestParallel:
    def test_pair_formula(self):
        # MTTF^2 / (2 * MTTR)
        assert redundant_pair_mttf(100.0, 1.0) == pytest.approx(5000.0)

    def test_n1_identity(self):
        assert parallel_mttf(123.0, 1.0, 1) == 123.0

    def test_mirroring_disks_gains_orders_of_magnitude(self):
        # 1-year disks with 1-hour repairs: mirrored pair lives ~4400 years.
        improved = redundant_pair_mttf(YEAR, HOUR)
        assert improved / YEAR > 1000

    def test_triple_beats_pair(self):
        assert parallel_mttf(100.0, 1.0, 3) > parallel_mttf(100.0, 1.0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_mttf(100.0, 0.0, 2)


class TestComposite:
    def test_groups_in_series(self):
        one_group = parallel_mttf(100.0, 1.0, 2)
        assert composite_mttf(100.0, 1.0, 4, redundancy=2) == pytest.approx(one_group / 4)

    def test_no_redundancy_is_plain_series(self):
        assert composite_mttf(100.0, 1.0, 8) == series_mttf(100.0, 8)
