"""Availability accounting on a real simulated fault experiment.

This is the acceptance path for the flight recorder + attribution +
budget pipeline: record a (COOP, node crash) experiment, round-trip the
artifact through disk, and check the ISSUE acceptance criteria — the
replay is bit-identical, >=95% of lost request-seconds are named, and
stage boundaries agree with the template fitter within one sample
interval.
"""

import pytest

from repro.core import QuantifyConfig
from repro.core.template import TemplateFitter
from repro.experiments.configs import version
from repro.faults.types import FaultKind
from repro.obs.attribution import StageAttributor
from repro.obs.budget import budget_from_records, format_budget
from repro.obs.recorder import read_record, record_flight, write_record
from repro.obs.timeline import render_timeline

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def recorded():
    config = QuantifyConfig.quick(kinds=(FaultKind.NODE_CRASH,))
    return record_flight(version("COOP"), FaultKind.NODE_CRASH, config)


class TestRecordedFlight:
    def test_artifact_round_trip_replays_identically(self, recorded, tmp_path):
        path = tmp_path / "coop-node_crash.json"
        write_record(recorded, path)
        replayed = read_record(path)
        assert replayed.to_dict() == recorded.to_dict()
        original = StageAttributor().attribute(recorded)
        again = StageAttributor().attribute(replayed)
        assert original.to_dict() == again.to_dict()

    def test_attribution_names_95_percent_of_loss(self, recorded):
        report = StageAttributor().attribute(recorded)
        assert report.total_lost > 0
        assert report.coverage >= 0.95

    def test_boundaries_agree_with_fitter(self, recorded):
        report = StageAttributor().attribute(recorded)
        fitted = TemplateFitter().fit(recorded.to_trace())
        assert report.checks, "expected at least one cross-checked stage"
        for check in report.checks:
            assert abs(check.delta) <= check.tolerance, check.stage
        # A/B come straight from the fitted template's measured stages
        by_stage = {c.stage: c for c in report.checks}
        for name in ("A", "B"):
            stage = fitted.stage(name)
            if stage is not None and name in by_stage:
                assert by_stage[name].fit_duration == pytest.approx(
                    stage.duration)

    def test_budget_rolls_up_the_recording(self, recorded):
        budget = budget_from_records([recorded])
        assert budget.version == "COOP"
        assert budget.availability < 1.0
        assert budget.measured[0].coverage >= 0.95
        text = format_budget(budget)
        assert "node_crash" in text
        assert "per-stage rollup" in text

    def test_timeline_renders_the_recording(self, recorded):
        text = render_timeline(recorded)
        report = StageAttributor().attribute(recorded)
        assert "COOP / node_crash" in text
        assert "INJECT" in text
        assert "REPAIR" in text
        assert f"{report.coverage * 100:.1f}%" in text
