"""Auction service: read/write asymmetry and elections."""

import pytest

from repro.auction import build_auction
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow


@pytest.fixture
def world():
    return build_auction(seed=2)


class TestSteadyState:
    def test_both_classes_served(self, world):
        world.env.run(until=30.0)
        assert world.read_stats.window(15, 30)["availability"] > 0.99
        assert world.write_stats.window(15, 30)["availability"] > 0.99

    def test_aggregate_is_sum_of_classes(self, world):
        world.env.run(until=30.0)
        assert world.stats.issued == (world.read_stats.issued
                                      + world.write_stats.issued)
        assert world.stats.succeeded == (world.read_stats.succeeded
                                         + world.write_stats.succeeded)

    def test_reads_spread_over_replicas(self, world):
        world.env.run(until=30.0)
        busy = [s for s in world.data if s.jobs_done > 50]
        assert len(busy) >= 2  # not everything lands on the master


class TestMasterCrash:
    def test_writes_blocked_reads_flow_during_election(self, world):
        env = world.env
        env.run(until=30.0)
        world.injector.inject(FaultKind.NODE_CRASH,
                              world.data_cluster.master.host.name)
        env.run(until=46.0)
        read_avail = world.read_stats.window(32, 46)["availability"]
        write_avail = world.write_stats.window(32, 46)["availability"]
        assert read_avail > 0.9
        assert write_avail < 0.5
        assert read_avail > write_avail + 0.3  # the asymmetry itself

    def test_election_promotes_highest_id_replica(self, world):
        env = world.env
        env.run(until=30.0)
        old = world.data_cluster.master
        world.injector.inject(FaultKind.NODE_CRASH, old.host.name)
        env.run(until=60.0)
        new = world.data_cluster.master
        assert new is not old
        candidates = [s for s in world.data if s is not old]
        assert new is max(candidates, key=lambda s: s.host.node_id)

    def test_writes_recover_after_election(self, world):
        env = world.env
        env.run(until=30.0)
        world.injector.inject(FaultKind.NODE_CRASH,
                              world.data_cluster.master.host.name)
        env.run(until=70.0)
        assert world.write_stats.window(55, 70)["availability"] > 0.95

    def test_election_marker_recorded(self, world):
        env = world.env
        env.run(until=30.0)
        world.injector.inject(FaultKind.NODE_CRASH,
                              world.data_cluster.master.host.name)
        env.run(until=60.0)
        assert world.markers.first("auction_election") is not None


class TestReplicaCrash:
    def test_neither_class_disturbed(self, world):
        env = world.env
        env.run(until=30.0)
        replica = [s for s in world.data
                   if s is not world.data_cluster.master][0]
        world.injector.inject(FaultKind.NODE_CRASH, replica.host.name)
        env.run(until=60.0)
        assert world.read_stats.window(35, 60)["availability"] > 0.97
        assert world.write_stats.window(35, 60)["availability"] > 0.97
        assert world.data_cluster.master is world.data[0]  # no election


class TestAppTier:
    def test_app_node_crash_tolerated(self, world):
        env = world.env
        env.run(until=30.0)
        world.injector.inject(FaultKind.NODE_CRASH, world.app[0].host.name)
        env.run(until=60.0)
        assert world.stats.window(40, 60)["availability"] > 0.9

    def test_operator_reset_recovers(self, world):
        env = world.env
        env.run(until=30.0)
        for srv in world.app:
            srv.inject_hang()
        env.run(until=45.0)
        for srv in world.app:
            srv.repair_hang()
        world.operator_reset()
        env.run(until=80.0)
        assert world.stats.window(70, 80)["availability"] > 0.95
