"""The 3-tier bookstore: tier mechanics and cross-tier fault propagation."""

import pytest

from repro.bookstore import BookstoreConfig, build_bookstore
from repro.faults.types import FaultKind


@pytest.fixture
def world():
    return build_bookstore(rate=120.0, seed=3)


def steady(world, until=40.0):
    world.env.run(until=until)
    return world.stats.window(until - 15.0, until)


class TestSteadyState:
    def test_serves_offered_load(self, world):
        win = steady(world)
        assert win["availability"] > 0.99
        assert win["success_rate"] == pytest.approx(120.0, rel=0.1)

    def test_all_tiers_participate(self, world):
        steady(world)
        assert all(s.jobs_done > 100 for s in world.web)
        assert all(s.jobs_done > 100 for s in world.app)
        assert world.db_cluster.primary.jobs_done > 100

    def test_replica_idle_until_failover(self, world):
        steady(world)
        replica = world.db[1]
        assert replica.jobs_done == 0

    def test_order_mix_generates_more_queries(self):
        heavy = build_bookstore(BookstoreConfig(order_fraction=1.0), rate=60.0, seed=3)
        light = build_bookstore(BookstoreConfig(order_fraction=0.0), rate=60.0, seed=3)
        heavy.env.run(until=30)
        light.env.run(until=30)
        q_heavy = sum(s.jobs_done for s in heavy.db)
        q_light = sum(s.jobs_done for s in light.db)
        assert q_heavy > 2 * q_light


class TestFaultPropagation:
    def test_db_primary_crash_stalls_then_fails_over(self, world):
        steady(world)
        world.injector.inject(FaultKind.NODE_CRASH, world.db[0].host.name)
        env = world.env
        env.run(until=47.0)
        # Whole-service stall while the failure is undetected: the web
        # tier can't complete anything without the database.
        assert world.stats.series.mean_rate(42.0, 47.0) < 30.0
        env.run(until=70.0)
        assert world.db_cluster.primary is world.db[1]
        assert world.stats.series.mean_rate(60.0, 70.0) > 100.0
        assert world.markers.first("db_failover") is not None

    def test_db_disk_fault_is_the_blind_spot(self, world):
        """A wedged database still heartbeats: no failover, service down
        until the disk is repaired (the divergence FME fixes in PRESS)."""
        steady(world)
        fault = world.injector.inject(FaultKind.SCSI_TIMEOUT,
                                      world.db_target(FaultKind.SCSI_TIMEOUT))
        world.env.run(until=90.0)
        assert world.markers.first("db_failover") is None
        assert world.stats.series.mean_rate(70.0, 90.0) < 40.0
        world.injector.repair(fault)
        world.env.run(until=120.0)
        assert world.stats.series.mean_rate(110.0, 120.0) > 90.0

    def test_app_node_crash_halves_the_tier(self, world):
        steady(world)
        world.injector.inject(FaultKind.NODE_CRASH, world.app[0].host.name)
        world.env.run(until=70.0)
        # One app node handles the load (workers spare) or sheds a little;
        # service continues, unlike the db-primary case.
        assert world.stats.series.mean_rate(55.0, 70.0) > 80.0

    def test_web_app_crash_refuses_only_its_share(self, world):
        steady(world)
        world.injector.inject(FaultKind.APP_CRASH, world.web[0].host.name)
        world.env.run(until=70.0)
        win = world.stats.window(50.0, 70.0)
        assert 0.3 < win["availability"] < 0.9  # half of DNS'd clients refused

    def test_rebooted_primary_rejoins_as_replica(self, world):
        steady(world)
        fault = world.injector.inject(FaultKind.NODE_CRASH, world.db[0].host.name)
        world.env.run(until=70.0)
        world.injector.repair(fault)
        world.env.run(until=100.0)
        assert world.db_cluster.primary is world.db[1]  # no failback
        assert world.db[0].accepting  # back as a healthy replica

    def test_operator_reset_restores_service(self, world):
        steady(world)
        for srv in world.app:
            srv.inject_hang()
        world.env.run(until=55.0)
        assert world.stats.series.mean_rate(48.0, 55.0) < 20.0
        # the operator resets the whole service (hang cleared by restart)
        for srv in world.app:
            srv.group.thaw(world.env)  # fault "repaired"
            srv.on_resume()
        world.operator_reset()
        world.env.run(until=90.0)
        assert world.stats.series.mean_rate(80.0, 90.0) > 100.0


class TestMethodologyGenerality:
    def test_template_fits_bookstore_faults(self):
        """The paper's 7-stage template fits the bookstore's behaviour."""
        from repro.core.template import TemplateFitter
        from repro.faults.campaign import CampaignConfig, SingleFaultCampaign

        world = build_bookstore(rate=120.0, seed=5)
        cfg = CampaignConfig(warmup=40.0, normal_window=15.0, fault_active=60.0,
                             post_repair_observe=40.0, post_reset_observe=30.0)
        campaign = SingleFaultCampaign(world, cfg)
        trace = campaign.run(FaultKind.NODE_CRASH, world.db[0].host.name)
        tpl = TemplateFitter().fit(trace)
        # Stage A: the undetected stall before failover kicks in.
        assert 4.0 <= tpl.stage("A").duration <= 20.0
        assert tpl.stage("A").throughput < 0.3 * trace.normal_tput
        # Stage C: degraded-but-serving on the promoted replica.
        assert tpl.stage("C").throughput > 0.7 * trace.normal_tput
        assert tpl.self_recovered

    def test_model_evaluates_bookstore_catalog(self):
        from repro.core.model import AvailabilityModel
        from repro.core.template import TemplateFitter
        from repro.faults.campaign import CampaignConfig, SingleFaultCampaign

        cfg = CampaignConfig(warmup=40.0, normal_window=15.0, fault_active=50.0,
                             post_repair_observe=40.0, post_reset_observe=30.0)
        templates = {}
        for kind in (FaultKind.NODE_CRASH, FaultKind.APP_CRASH):
            world = build_bookstore(rate=120.0, seed=5)
            trace = SingleFaultCampaign(world, cfg).run(
                kind, world.db_target(kind) if kind is FaultKind.NODE_CRASH
                else world.default_target(kind))
            templates[kind] = TemplateFitter().fit(trace)
        world = build_bookstore(rate=120.0, seed=5)
        result = AvailabilityModel(world.catalog).evaluate(
            templates, 120.0, 120.0, version="BOOKSTORE")
        assert 0.99 < result.availability < 1.0
