"""Bookstore tier mechanics at unit granularity (fast)."""

from repro.bookstore.config import BookstoreConfig
from repro.bookstore.tiers import DbCluster, DbServer, Dispatcher, Job, TierServer
from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host

FAST = BookstoreConfig(
    web_cpu=1e-4, app_cpu=1e-4, db_cpu=1e-4,
    db_miss_ratio=0.0, queue_capacity=4, workers_per_node=1,
    tier_timeout=2.0, db_heartbeat=0.5, db_loss_threshold=3,
    db_promotion_time=0.5,
)


class TestConfig:
    def test_with_and_total_nodes(self):
        cfg = BookstoreConfig()
        assert cfg.total_nodes == 2 + 2 + 2
        assert cfg.with_(web_nodes=3).total_nodes == 7


class TestDispatcher:
    def test_picks_least_loaded(self, env):
        d = Dispatcher(env, FAST)
        a = TierServer(Host(env, "a", 0), "app", FAST)
        b = TierServer(Host(env, "b", 1), "app", FAST)
        for s in (a, b):
            s.start()
            d.attach(s)
        a.queue.force_put(Job(env, "x"))
        a.queue.force_put(Job(env, "x"))

        def run():
            ok = yield from d.dispatch(Job(env, "y"))
            assert ok

        env.process(run())
        env.run(until=1.0)
        # the new job went to b (a had backlog)
        assert b.jobs_done >= 1

    def test_fails_fast_with_no_targets(self, env):
        d = Dispatcher(env, FAST)
        outcome = []

        def run():
            ok = yield from d.dispatch(Job(env, "y"))
            outcome.append((env.now, ok))

        env.process(run())
        env.run(until=5.0)
        # "no server alive" is reported within the no-target patience, not
        # after the whole tier timeout (workers must not be held hostage).
        assert outcome and outcome[0][1] is False
        assert outcome[0][0] <= Dispatcher.NO_TARGET_PATIENCE + 0.2

    def test_skips_dead_servers(self, env):
        d = Dispatcher(env, FAST)
        a = TierServer(Host(env, "a", 0), "app", FAST)
        a.start()
        d.attach(a)
        a.inject_crash()
        outcome = []

        def run():
            ok = yield from d.dispatch(Job(env, "y"))
            outcome.append(ok)

        env.process(run())
        env.run(until=5.0)
        assert outcome == [False]


class TestTierServer:
    def test_processes_jobs(self, env):
        s = TierServer(Host(env, "a", 0), "app", FAST)
        s.start()
        job = Job(env, "x")
        s.queue.force_put(job)
        env.run(until=1.0)
        assert job.done.triggered
        assert s.jobs_done == 1

    def test_downstream_failure_propagates_fast(self, env):
        down = Dispatcher(env, FAST)  # empty: downstream always fails
        s = TierServer(Host(env, "a", 0), "app", FAST, downstream=down)
        s.start()
        job = Job(env, "x", queries=1)
        s.queue.force_put(job)
        env.run(until=5.0)
        assert job.done.triggered
        assert not job.succeeded  # failed, and well before the tier timeout

    def test_restart_after_crash(self, env):
        s = TierServer(Host(env, "a", 0), "app", FAST)
        s.start()
        s.inject_crash()
        s.repair_crash()
        job = Job(env, "x")
        s.queue.force_put(job)
        env.run(until=1.0)
        assert job.done.triggered


class TestDbCluster:
    def build(self, env):
        cluster = DbCluster(env, FAST)
        servers = []
        for i in range(2):
            host = Host(env, f"db{i}", i)
            Disk(env, host, 0, DiskParams(seek_time=0.001, jitter=0.0))
            srv = DbServer(host, FAST, cluster)
            cluster.attach(srv)
            srv.start()
            servers.append(srv)
        return cluster, servers

    def test_first_attached_is_primary(self, env):
        cluster, servers = self.build(env)
        assert cluster.primary is servers[0]
        assert cluster.candidates() == [servers[0]]

    def test_failover_on_primary_crash(self, env):
        cluster, servers = self.build(env)
        env.run(until=2.0)
        servers[0].host.crash()
        env.run(until=6.0)
        assert cluster.primary is servers[1]

    def test_no_failover_while_primary_heartbeats(self, env):
        cluster, servers = self.build(env)
        env.run(until=10.0)
        assert cluster.primary is servers[0]

    def test_query_served_with_disk_miss(self, env):
        cluster, servers = self.build(env)
        cfg = FAST.with_(db_miss_ratio=1.0)
        host = Host(env, "db9", 9)
        Disk(env, host, 0, DiskParams(seek_time=0.001, jitter=0.0))
        import numpy as np

        srv = DbServer(host, cfg, DbCluster(env, cfg), rng=np.random.default_rng(1))
        srv.cluster.attach(srv)
        srv.start()
        job = Job(env, "q")
        srv.queue.force_put(job)
        env.run(until=1.0)
        assert job.done.triggered
        assert host.disks[0].ops_served == 1
