"""CLI end-to-end (quick mode): the commands users actually run."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.slow


def test_inject_prints_timeline_and_sets(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "inject", "COOP", "node_crash"]) == 0
    out = capsys.readouterr().out
    assert "INJECT" in out
    assert "REPAIR" in out
    assert "cooperation sets" in out


def test_quantify_single_version(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "quantify", "INDEP"]) == 0
    out = capsys.readouterr().out
    assert "version INDEP" in out
    assert "availability=" in out


def test_figure_table1(capsys):
    assert main(["--quick", "figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "node crash" in out
    assert "MTTF" in out
