"""CLI end-to-end (quick mode): the commands users actually run."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.slow


def test_inject_prints_timeline_and_sets(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "inject", "COOP", "node_crash"]) == 0
    out = capsys.readouterr().out
    assert "INJECT" in out
    assert "REPAIR" in out
    assert "cooperation sets" in out


def test_inject_json(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "inject", "COOP", "node_crash", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fault"] == "node_crash"
    assert payload["timeline"]["t_detect"] is not None
    kinds = {e["kind"] for e in payload["events"]}
    assert {"fault_injected", "detected", "fault_repaired"} <= kinds


def test_trace_pressha_node_crash_quick(capsys, monkeypatch):
    """The headline telemetry command: alias resolution + trailing --quick."""
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["trace", "pressha", "node_crash", "--quick"]) == 0
    captured = capsys.readouterr()
    events = [json.loads(line) for line in captured.out.splitlines() if line]
    assert events, "trace must emit JSONL events"
    kinds = {e["kind"] for e in events}
    assert {"fault_injected", "detected", "fault_repaired"} <= kinds
    assert "memb_view" in kinds  # >= 1 membership event
    assert kinds & {"fe_node_down", "fe_node_up", "fe_failed"}  # frontend
    assert "events" in captured.err


def test_trace_csv_to_file(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    out = tmp_path / "trace.csv"
    assert main(["--quick", "trace", "COOP", "app_crash",
                 "--format", "csv", "--out", str(out)]) == 0
    from repro.obs.export import read_csv

    events = read_csv(str(out))
    assert any(e.kind == "fault_injected" for e in events)


def test_metrics_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "metrics", "coop", "--until", "20"]) == 0
    out = capsys.readouterr().out
    assert "client_requests_issued" in out
    assert "press_cache_hits{node=n0}" in out


def test_metrics_json(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "metrics", "INDEP", "--until", "20", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    names = {m["name"] for m in snapshot}
    assert "client_requests_issued" in names


def test_profile_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "profile", "INDEP", "--until", "20"]) == 0
    out = capsys.readouterr().out
    assert "events processed" in out
    assert "n0.main" in out


def test_unknown_version_is_a_clean_error(monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    with pytest.raises(SystemExit) as exc:
        main(["--quick", "metrics", "no-such-version"])
    assert "unknown version" in str(exc.value)


def test_quantify_single_version(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert main(["--quick", "quantify", "INDEP"]) == 0
    out = capsys.readouterr().out
    assert "version INDEP" in out
    assert "availability=" in out


def test_figure_table1(capsys):
    assert main(["--quick", "figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "node crash" in out
    assert "MTTF" in out
