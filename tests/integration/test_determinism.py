"""Whole-world determinism: identical seeds produce identical runs.

The methodology compares availability across versions; scheduler or RNG
nondeterminism would show up as irreproducible templates.  These tests
pin the strongest guarantee the kernel makes.
"""

import pytest

from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.experiments.runner import build_world
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow


def run_world(seed, with_fault=False):
    world = build_world(version("COOP"), SMALL, seed=seed)
    env = world.env
    if with_fault:
        env.run(until=80.0)
        world.injector.inject_for(FaultKind.NODE_FREEZE, "n1", duration=30.0)
    env.run(until=140.0)
    return world


def fingerprint(world):
    return (
        world.stats.issued,
        world.stats.succeeded,
        dict(world.stats.outcomes),
        tuple(round(t, 9) for t in world.stats.series.times[:500]),
        tuple(sorted(s.coop) and tuple(sorted(s.coop)) for s in world.servers),
        tuple(len(s.cache) for s in world.servers),
    )


class TestDeterminism:
    def test_fault_free_identical(self):
        assert fingerprint(run_world(7)) == fingerprint(run_world(7))

    def test_fault_run_identical(self):
        a = run_world(7, with_fault=True)
        b = run_world(7, with_fault=True)
        assert fingerprint(a) == fingerprint(b)
        assert [tuple(e) for e in a.markers.entries[:50]] == \
               [tuple(e) for e in b.markers.entries[:50]]

    def test_different_seeds_differ(self):
        assert fingerprint(run_world(7)) != fingerprint(run_world(8))
