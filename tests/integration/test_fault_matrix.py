"""Integration: the qualitative per-(version, fault) behaviours of Section 6.

These run real single-fault experiments on the SMALL profile (shortened
windows) and assert the *shapes* the paper reports, not exact numbers.
Marked slow; deselect with ``-m "not slow"`` for quick iterations.
"""

import pytest

from repro.core.quantify import QuantifyConfig, run_single_fault
from repro.experiments.configs import version
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow

CFG = QuantifyConfig.quick()


def run(vname, kind):
    return run_single_fault(version(vname), kind, CFG)


class TestCoopPropagation:
    def test_disk_fault_stalls_whole_cluster_then_splinters(self):
        trace, world = run("COOP", FaultKind.SCSI_TIMEOUT)
        # Stage A ends in a cluster-wide stall: some 5 s window inside the
        # fault drops below 20% of normal.
        _, rates = trace.series.bucketize(5.0, trace.t_inject, trace.t_repair)
        assert rates.min() < 0.2 * trace.normal_tput
        # Detection happened via heartbeat loss, not instantly.
        assert trace.t_detect is not None
        assert 5.0 < trace.t_detect - trace.t_inject < 40.0
        # The faulty node splinters and never reintegrates -> operator reset.
        assert trace.t_reset is not None

    def test_node_crash_recovers_without_operator(self):
        trace, world = run("COOP", FaultKind.NODE_CRASH)
        assert trace.t_reset is None  # rejoin-on-restart works in base PRESS
        assert all(len(s.coop) == 4 for s in world.servers)

    def test_freeze_splinters_until_reset(self):
        trace, world = run("COOP", FaultKind.NODE_FREEZE)
        assert trace.t_reset is not None
        post_reset = world.stats.series.mean_rate(trace.t_end - 20, trace.t_end)
        assert post_reset > 0.4 * trace.normal_tput  # reset re-forms the cluster

    def test_app_crash_detected_fast_via_connection_reset(self):
        trace, _ = run("COOP", FaultKind.APP_CRASH)
        assert trace.t_detect is not None
        assert trace.t_detect - trace.t_inject < 2.0


class TestTechniqueSignatures:
    def test_mem_blind_to_scsi(self):
        """Membership alone: a disk fault stalls the cluster for the whole
        fault duration (the daemons keep answering heartbeats)."""
        trace, _ = run("MEM", FaultKind.SCSI_TIMEOUT)
        tail = trace.series.mean_rate(trace.t_repair - 20, trace.t_repair)
        assert tail < 0.4 * trace.normal_tput
        # ...and nothing ever detects the fault (the membership daemons
        # keep heartbeating happily).
        assert trace.t_detect is None

    def test_mem_reintegrates_frozen_node(self):
        trace, world = run("MEM", FaultKind.NODE_FREEZE)
        assert all(len(s.coop) == 5 for s in world.servers)
        assert trace.t_reset is None

    def test_qmon_keeps_cluster_alive_through_scsi(self):
        trace, world = run("QMON", FaultKind.SCSI_TIMEOUT)
        during = trace.series.mean_rate(trace.t_detect or trace.t_inject,
                                        trace.t_repair)
        assert during > 0.6 * trace.normal_tput

    def test_qmon_does_not_reintegrate(self):
        trace, world = run("QMON", FaultKind.SCSI_TIMEOUT)
        # Queue monitoring detects failures but never re-integrates: either
        # the node is still excluded at the end, or only an operator reset
        # brought it back.
        healthy = world.server_on("n0")
        assert (trace.t_reset is not None) or (1 not in healthy.coop)

    def test_mq_oscillates_on_app_hang(self):
        """Queue monitor removes, membership re-adds: Section 4.4's conflict."""
        _, world = run("MQ", FaultKind.APP_HANG)
        exclusions = [d for t, d in world.markers.all("detected")
                      if d[0] == "qmon" and d[2] == 1]
        assert len(exclusions) >= 2  # removed more than once

    def test_fme_converts_hang_to_restart(self):
        trace, world = run("FME", FaultKind.APP_HANG)
        assert world.markers.first("fme_restart") is not None
        during = trace.series.mean_rate(trace.t_inject + 20, trace.t_repair)
        assert during > 0.85 * trace.normal_tput

    def test_fme_takes_node_offline_on_disk_fault(self):
        trace, world = run("FME", FaultKind.SCSI_TIMEOUT)
        assert world.markers.first("fme_offline") is not None
        # ...and the node boots back once the disk is repaired.
        assert world.host_by_name("n1").is_up
        assert all(len(s.coop) == 5 for s in world.servers)

    def test_frontend_masks_node_crash(self):
        trace, world = run("FE-X", FaultKind.NODE_CRASH)
        tail = trace.series.mean_rate(trace.t_repair - 20, trace.t_repair)
        assert tail > 0.85 * trace.normal_tput  # spare capacity absorbs it

    def test_sfme_pulls_isolated_node_from_rotation(self):
        _, world = run("S-FME", FaultKind.LINK_DOWN)
        assert world.markers.first("sfme_offline") is not None


class TestIndepIsolation:
    def test_fault_on_one_node_leaves_others_at_speed(self):
        trace, world = run("INDEP", FaultKind.NODE_CRASH)
        during = trace.series.mean_rate(trace.t_inject + 5, trace.t_repair)
        # DNS keeps sending 1/4 of the clients to the dead node; the rest
        # of the service is untouched.
        assert during == pytest.approx(0.75 * trace.normal_tput, rel=0.15)
        assert trace.t_reset is None
