"""Satellite regression test: the campaign trace digest is identical
across two PYTHONHASHSEED values.

This is the runtime complement to the REP005 lint rule — if any code
path iterates an unordered container into the event stream, the chained
digests split and this test names the first diverging event.
"""

import pytest

from repro.analysis.sanitize import run_sanitize

pytestmark = pytest.mark.slow


def test_smoke_scenario_hashseed_invariant():
    result = run_sanitize(version_name="coop", fault="node_crash", seed=7,
                          hash_seeds=(1, 4242), smoke=True)
    detail = "" if result.divergence is None else result.divergence.describe()
    assert result.trace_match, detail
    assert result.metrics_match
    # Span trees (ids, parentage, timings, sampling) are part of the
    # fingerprint: causal traces must not depend on hash iteration order.
    assert result.spans_match
    assert result.timeline_match
    assert result.ok
    a, b = result.runs
    assert a["trace_digest"] == b["trace_digest"]
    assert a["n_spans"] == b["n_spans"] > 0
    assert a["python_hash_seed"] == "1" and b["python_hash_seed"] == "4242"
