"""INDEP under every fault kind: no propagation, clean isolation."""

import pytest

from repro.core.quantify import QuantifyConfig, run_single_fault
from repro.core.template import TemplateFitter
from repro.experiments.configs import version
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow

CFG = QuantifyConfig.quick()


@pytest.mark.parametrize("kind", [
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.SCSI_TIMEOUT,
])
def test_single_node_fault_costs_at_most_one_share(kind):
    trace, world = run_single_fault(version("INDEP"), kind, CFG)
    tpl = TemplateFitter(CFG.fit).fit(trace)
    # During the fault the other three nodes keep serving: throughput
    # never drops below ~3/4 of normal (minus noise).
    during = trace.series.mean_rate(trace.t_inject + 2, trace.t_repair)
    assert during > 0.6 * trace.normal_tput
    # Nothing detects anything (INDEP has no detection machinery)...
    assert trace.t_detect is None
    # ...and nothing splinters: service returns by itself after repair.
    assert tpl.self_recovered
    assert trace.t_reset is None


def test_scsi_fault_on_indep_only_slows_one_node(CFG=CFG):
    trace, world = run_single_fault(version("INDEP"), FaultKind.SCSI_TIMEOUT, CFG)
    # The faulty node wedges on its disk queue; its share times out while
    # the others are untouched.
    healthy = [s for s in world.servers if s.host.name != "n1"]
    assert all(s.listening for s in healthy)
    during = trace.series.mean_rate(trace.t_inject + 5, trace.t_repair)
    assert during == pytest.approx(0.75 * trace.normal_tput, rel=0.2)


def test_frontend_masks_indep_node_crash():
    trace, world = run_single_fault(version("FE-X-INDEP"), FaultKind.NODE_CRASH, CFG)
    tpl = TemplateFitter(CFG.fit).fit(trace)
    # Mon removes the dead node after 3 pings; stage C is near-normal.
    assert trace.t_detect is not None
    assert tpl.stage("C").throughput > 0.9 * trace.normal_tput
