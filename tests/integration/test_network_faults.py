"""Network-fault stories: switch outages, link flaps, partition+repair."""

import pytest

from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.experiments.runner import build_world
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow


class TestSwitchDown:
    def test_coop_degrades_to_singletons_and_needs_operator(self):
        world = build_world(version("COOP"), SMALL)
        env = world.env
        env.run(until=90.0)
        fault = world.injector.inject(FaultKind.SWITCH_DOWN, "switch0")
        env.run(until=150.0)
        # exclusion proceeds around the ring, one silent predecessor at a
        # time: by now every node has dropped at least one peer
        assert all(len(s.coop) < 4 for s in world.servers)
        world.injector.repair(fault)
        env.run(until=210.0)
        # ...and ends in singletons; no restart happened, so nobody
        # rejoins on its own even though the switch is back
        assert all(len(s.coop) == 1 for s in world.servers)
        world.operator_reset()
        env.run(until=300.0)
        assert all(len(s.coop) == 4 for s in world.servers)
        assert world.stats.series.mean_rate(280.0, 300.0) > \
            0.8 * world.offered_rate

    def test_membership_recovers_switch_down_without_operator(self):
        world = build_world(version("MEM"), SMALL)
        env = world.env
        env.run(until=90.0)
        world.injector.inject_for(FaultKind.SWITCH_DOWN, "switch0",
                                  duration=60.0)
        env.run(until=400.0)
        # daemons re-merge and presses re-wire, no operator involved
        assert all(len(s.coop) == 5 for s in world.servers)
        resets = world.markers.all("operator_reset")
        assert not resets


class TestLinkFlap:
    def test_double_flap_converges_with_membership(self):
        world = build_world(version("MQ"), SMALL)
        env = world.env
        env.run(until=90.0)
        for start in (90.0, 150.0):
            env.run(until=start)
            world.injector.inject_for(FaultKind.LINK_DOWN, "n1", duration=30.0)
        env.run(until=400.0)
        assert all(len(s.coop) == 5 for s in world.servers)
        rate = world.stats.series.mean_rate(370.0, 400.0)
        assert rate > 0.9 * world.offered_rate

    def test_coop_link_fault_isolated_node_still_serves_clients(self):
        """During a COOP link fault the isolated node keeps its client-side
        connectivity (Mendosus separates the networks), so it serves its
        DNS share from its own cache/disk."""
        world = build_world(version("COOP"), SMALL)
        env = world.env
        env.run(until=90.0)
        world.injector.inject(FaultKind.LINK_DOWN, "n1")
        env.run(until=170.0)
        n1 = world.server_on("n1")
        assert sorted(n1.coop) == [1]
        served_before = n1.requests_served
        env.run(until=200.0)
        assert n1.requests_served > served_before  # still making progress
