"""End-to-end quantification pipeline (restricted fault set for speed)."""

import pytest

from repro.core import QuantifyConfig, measure_fault_free, quantify_version
from repro.experiments.configs import version
from repro.faults.types import FaultKind

pytestmark = pytest.mark.slow


class TestQuantifyPipeline:
    def test_coop_two_kinds(self):
        cfg = QuantifyConfig.quick(
            kinds=(FaultKind.NODE_CRASH, FaultKind.APP_CRASH))
        va = quantify_version("COOP", cfg)
        assert set(va.templates) == {FaultKind.NODE_CRASH, FaultKind.APP_CRASH}
        assert 0.0 < va.unavailability < 0.05
        assert va.result.contribution(FaultKind.NODE_CRASH) is not None
        # node crashes are 4x more frequent than app crashes and hurt at
        # least comparably per fault
        u = va.result.by_kind()
        assert u[FaultKind.NODE_CRASH] > u[FaultKind.APP_CRASH]

    def test_accepts_spec_object(self):
        spec = version("COOP").with_nodes(4)
        cfg = QuantifyConfig.quick(kinds=(FaultKind.APP_CRASH,))
        va = quantify_version(spec, cfg)
        assert va.spec.n_nodes == 4

    def test_fault_free_measurement(self):
        cfg = QuantifyConfig.quick()
        ff = measure_fault_free(version("COOP"), cfg)
        assert ff["availability"] > 0.98
        assert ff["throughput"] == pytest.approx(ff["offered"], rel=0.05)

    def test_seed_changes_are_bounded(self):
        """Different seeds shift the numbers but not the conclusion."""
        kinds = (FaultKind.NODE_CRASH,)
        u = [quantify_version("COOP", QuantifyConfig.quick(seed=s, kinds=kinds))
             .unavailability for s in (0, 1)]
        assert all(x > 0 for x in u)
        assert max(u) / min(u) < 5.0

    def test_templates_resolved_consistently(self):
        cfg = QuantifyConfig.quick(kinds=(FaultKind.NODE_FREEZE,))
        va = quantify_version("COOP", cfg)
        contribution = va.result.contribution(FaultKind.NODE_FREEZE)
        resolved = contribution.template
        # COOP freeze splinters: the operator path must be charged.
        assert resolved.stage("E").duration == cfg.environment.operator_response
        assert resolved.stage("C").duration > 0
