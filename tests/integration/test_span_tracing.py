"""End-to-end causal tracing: ctx threads the whole cluster and the
blame report exposes the paper's mechanism.

The acceptance criterion for the tracing layer: during/after a node
crash, COOP's p99 critical paths show ``peer_fetch`` hops (cooperative
fault propagation — peers stall on the dead node), while the matching
FME run's recovery-phase tails stay local.  And span tracing must be a
pure observer: with it on, the structured event stream is byte-identical
to a run with it off.
"""

import pytest

from repro.core.quantify import QuantifyConfig, run_single_fault
from repro.experiments.configs import version
from repro.faults.types import FaultKind
from repro.obs.export import event_to_dict
from repro.obs.spans import blame_report, phases_from_trace
from repro.obs.telemetry import Telemetry

pytestmark = pytest.mark.slow


def _node_crash_blame(version_name):
    telemetry = Telemetry(trace_spans=True)
    run_single_fault(version(version_name), FaultKind.NODE_CRASH,
                     QuantifyConfig.quick(), telemetry=telemetry)
    phases = phases_from_trace(telemetry.tracer.events)
    report = blame_report(telemetry.spans.trees(), percentile=99.0,
                          phases=phases)
    return telemetry, report


def _after_phase(report):
    for phase in report["phases"]:
        if phase["label"].startswith("after"):
            return phase
    raise AssertionError(
        f"no after-phase in {[p['label'] for p in report['phases']]}")


class TestCoopVsFmeBlame:
    @pytest.fixture(scope="class")
    def coop(self):
        return _node_crash_blame("COOP")

    @pytest.fixture(scope="class")
    def fme(self):
        return _node_crash_blame("FME")

    def test_trees_recorded_without_drops(self, coop):
        telemetry, report = coop
        assert report["requests"] > 0
        assert telemetry.spans.dropped == 0

    def test_coop_recovery_tail_blames_peer_fetch(self, coop):
        _, report = coop
        after = _after_phase(report)
        assert after["groups"], "COOP after-phase has no tail groups"
        assert any("peer_fetch" in g["signature"] for g in after["groups"]), \
            f"no peer_fetch on COOP p99 paths: {after['groups']}"

    def test_fme_recovery_tail_stays_local(self, fme):
        _, report = fme
        after = _after_phase(report)
        assert all("peer_fetch" not in g["signature"]
                   for g in after["groups"]), \
            f"peer_fetch on FME p99 recovery paths: {after['groups']}"

    def test_fme_probe_rounds_traced_but_excluded_from_blame(self, fme):
        telemetry, report = fme
        probe_ids = [r for r in telemetry.spans.request_ids if r < 0]
        assert probe_ids, "FME probe rounds should open monitoring spans"
        tree = telemetry.spans.tree(probe_ids[0])
        assert tree[0].name == "fme_probe"
        # monitoring trees never count toward the request blame total
        positive = [r for r in telemetry.spans.request_ids if r > 0]
        assert report["requests"] == len(positive)


class TestZeroPerturbation:
    def test_event_stream_identical_with_tracing_on(self):
        config = QuantifyConfig.quick()
        plain = Telemetry()
        run_single_fault(version("COOP"), FaultKind.NODE_CRASH, config,
                         telemetry=plain)
        traced = Telemetry(trace_spans=True)
        run_single_fault(version("COOP"), FaultKind.NODE_CRASH, config,
                         telemetry=traced)
        a = [event_to_dict(e) for e in plain.tracer.events]
        b = [event_to_dict(e) for e in traced.tracer.events]
        assert len(traced.spans) > 0
        assert a == b
