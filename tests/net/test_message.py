"""The canonical wire-kind registry and the Message membership assert."""

import pytest

from repro.net.message import WIRE_KINDS, Message


class TestWireKinds:
    def test_registry_is_frozen(self):
        assert isinstance(WIRE_KINDS, frozenset)
        assert all(isinstance(k, str) and k for k in WIRE_KINDS)

    def test_known_protocol_planes_present(self):
        # PRESS data plane
        assert {"cache_sync", "fwd_req", "fwd_resp", "conn_closed"} <= WIRE_KINDS
        # PRESS control plane
        assert {"hb", "node_dead", "rejoin", "config",
                "cache_add", "cache_del"} <= WIRE_KINDS
        # HA membership protocol
        assert {"mhb", "prepare", "ack", "commit", "probe",
                "join", "offer", "join_req"} <= WIRE_KINDS
        assert "tick" in WIRE_KINDS

    def test_every_kind_constructs(self):
        for kind in sorted(WIRE_KINDS):
            msg = Message(kind, 0, 1)
            assert msg.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(AssertionError, match="unknown wire kind"):
            Message("no_such_kind", 0, 1)

    def test_payload_and_size_defaults(self):
        msg = Message("hb", 0, 1)
        assert msg.payload is None
        assert msg.size == 128
