"""Cluster network: links, switch, datagrams, multicast."""

import pytest

from repro.hardware.host import Host
from repro.net.message import Message
from repro.net.network import ClusterNetwork
from repro.sim.store import Store


@pytest.fixture
def net(env):
    return ClusterNetwork(env)


@pytest.fixture
def hosts(env, net):
    hs = [Host(env, f"n{i}", i) for i in range(3)]
    for h in hs:
        net.attach(h)
    return hs


class TestTopology:
    def test_attach_idempotent(self, net, hosts):
        link = net.link(hosts[0])
        assert net.attach(hosts[0]) is link

    def test_path_up_requires_both_links_and_switch(self, net, hosts):
        a, b, _ = hosts
        assert net.path_up(a, b)
        net.link(a).up = False
        assert not net.path_up(a, b)
        net.link(a).up = True
        net.switch.up = False
        assert not net.path_up(a, b)

    def test_self_path_always_up(self, net, hosts):
        net.switch.up = False
        assert net.path_up(hosts[0], hosts[0])

    def test_reachable_needs_live_os(self, net, hosts):
        a, b, _ = hosts
        b.crash()
        assert net.path_up(a, b)
        assert not net.reachable(a, b)

    def test_frozen_host_unreachable(self, net, hosts):
        a, b, _ = hosts
        b.freeze()
        assert not net.reachable(a, b)

    def test_transfer_time(self, net):
        assert net.transfer_time(0) == pytest.approx(net.latency)
        assert net.transfer_time(125_000_000) == pytest.approx(net.latency + 1.0)


class TestDatagram:
    def test_delivery_after_latency(self, env, net, hosts):
        a, b, _ = hosts
        inbox = Store(env)
        net.datagram(a, b, Message("hb", 0, 1), inbox)
        assert inbox.level == 0
        env.run()
        assert inbox.level == 1

    def test_dropped_when_path_down(self, env, net, hosts):
        a, b, _ = hosts
        net.link(b).up = False
        inbox = Store(env)
        net.datagram(a, b, Message("hb", 0, 1), inbox)
        env.run()
        assert inbox.level == 0

    def test_dropped_if_destination_dies_in_flight(self, env, net, hosts):
        a, b, _ = hosts
        inbox = Store(env)
        net.datagram(a, b, Message("hb", 0, 1), inbox)
        b.crash()  # before the delivery event fires
        env.run()
        assert inbox.level == 0


class TestMulticast:
    def test_reaches_all_subscribers(self, env, net, hosts):
        boxes = [Store(env) for _ in hosts]
        for h, box in zip(hosts, boxes):
            net.join_multicast("grp", h, box)
        sent = net.multicast("grp", hosts[0], Message("join", 0, None))
        env.run()
        assert sent == 3
        assert [b.level for b in boxes] == [1, 1, 1]

    def test_leave(self, env, net, hosts):
        boxes = [Store(env) for _ in hosts]
        for h, box in zip(hosts, boxes):
            net.join_multicast("grp", h, box)
        net.leave_multicast("grp", hosts[1], boxes[1])
        net.multicast("grp", hosts[0], Message("join", 0, None))
        env.run()
        assert [b.level for b in boxes] == [1, 0, 1]

    def test_respects_network_faults(self, env, net, hosts):
        boxes = [Store(env) for _ in hosts]
        for h, box in zip(hosts, boxes):
            net.join_multicast("grp", h, box)
        net.link(hosts[2]).up = False
        net.multicast("grp", hosts[0], Message("join", 0, None))
        env.run()
        assert [b.level for b in boxes] == [1, 1, 0]
