"""TCP-like connection semantics: flow control, blocking, reset."""

import pytest

from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.net.transport import CLOSED, Connection, ConnectionClosed


@pytest.fixture
def setup(env):
    net = ClusterNetwork(env)
    a, b = Host(env, "a", 0), Host(env, "b", 1)
    net.attach(a)
    net.attach(b)
    conn = Connection(env, net, a, b, window=4)
    return net, a, b, conn


class TestDelivery:
    def test_send_recv_in_order(self, env, setup):
        net, a, b, conn = setup
        received = []

        def sender():
            for i in range(5):
                yield conn.endpoint(a).send(i)

        def receiver():
            while len(received) < 5:
                msg = yield conn.endpoint(b).recv()
                received.append(msg)

        env.process(sender())
        env.process(receiver())
        env.run(until=1)
        assert received == [0, 1, 2, 3, 4]

    def test_window_backpressure(self, env, setup):
        net, a, b, conn = setup
        done = []

        def sender():
            for i in range(6):
                yield conn.endpoint(a).send(i)
                done.append((env.now, i))

        env.process(sender())
        env.run(until=5)
        # Window of 4: the 5th message blocks until the reader drains.
        assert len(done) == 4

        def reader():
            while True:
                yield conn.endpoint(b).recv()

        env.process(reader())
        env.run(until=10)
        assert len(done) == 6

    def test_send_blocks_while_peer_down(self, env, setup):
        net, a, b, conn = setup
        done = []

        def sender():
            yield conn.endpoint(a).send("x")
            done.append(env.now)

        b.freeze()
        env.process(sender())
        env.run(until=5)
        assert done == []
        b.unfreeze()
        env.run(until=6)
        assert len(done) == 1

    def test_send_blocks_while_link_down(self, env, setup):
        net, a, b, conn = setup
        done = []

        def sender():
            yield conn.endpoint(a).send("x")
            done.append(env.now)

        net.link(a).up = False
        env.process(sender())
        env.run(until=3)
        assert done == []
        net.link(a).up = True
        env.run(until=4)
        assert len(done) == 1


class TestReset:
    def test_blocked_sender_aborted(self, env, setup):
        net, a, b, conn = setup
        outcome = []

        def sender():
            b.freeze()
            try:
                yield conn.endpoint(a).send("x")
                outcome.append("sent")
            except ConnectionClosed:
                outcome.append("closed")

        env.process(sender())
        env.run(until=1)
        conn.reset()
        env.run(until=2)
        assert outcome == ["closed"]

    def test_reader_gets_closed_sentinel(self, env, setup):
        net, a, b, conn = setup
        got = []

        def reader():
            msg = yield conn.endpoint(b).recv()
            got.append(msg)

        env.process(reader())
        env.run(until=1)
        conn.reset()
        env.run(until=2)
        assert got == [CLOSED]

    def test_buffered_data_discarded_on_reset(self, env, setup):
        net, a, b, conn = setup

        def sender():
            yield conn.endpoint(a).send("data")

        env.process(sender())
        env.run(until=1)
        conn.reset()
        got = []

        def reader():
            msg = yield conn.endpoint(b).recv()
            got.append(msg)

        env.process(reader())
        env.run(until=2)
        assert got == [CLOSED]

    def test_send_after_reset_fails(self, env, setup):
        net, a, b, conn = setup
        conn.reset()
        outcome = []

        def sender():
            try:
                yield conn.endpoint(a).send("x")
            except ConnectionClosed:
                outcome.append("closed")

        env.process(sender())
        env.run(until=1)
        assert outcome == ["closed"]

    def test_reset_idempotent(self, env, setup):
        _, _, _, conn = setup
        conn.reset()
        conn.reset()

    def test_abandoned_send_failure_is_defused(self, env, setup):
        net, a, b, conn = setup
        b.freeze()
        conn.endpoint(a).send("x")  # nobody ever waits on this event
        env.run(until=1)
        conn.reset()
        env.run(until=2)  # must not raise an unhandled ConnectionClosed

    def test_peer_of(self, setup):
        net, a, b, conn = setup
        assert conn.peer_of(a) is b
        assert conn.peer_of(b) is a
