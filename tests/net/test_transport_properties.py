"""Transport ordering and reliability properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.net.transport import CLOSED, Connection, ConnectionClosed
from repro.sim.kernel import Environment


def build(window):
    env = Environment()
    net = ClusterNetwork(env)
    a, b = Host(env, "a", 0), Host(env, "b", 1)
    net.attach(a)
    net.attach(b)
    return env, net, a, b, Connection(env, net, a, b, window=window)


@settings(max_examples=40, deadline=None)
@given(
    n_msgs=st.integers(min_value=1, max_value=40),
    window=st.integers(min_value=1, max_value=8),
    consumer_delay=st.floats(min_value=0.0, max_value=0.05),
)
def test_fifo_delivery_under_any_window(n_msgs, window, consumer_delay):
    env, net, a, b, conn = build(window)
    received = []

    def sender():
        for i in range(n_msgs):
            yield conn.endpoint(a).send(i)

    def receiver():
        while len(received) < n_msgs:
            msg = yield conn.endpoint(b).recv()
            received.append(msg)
            if consumer_delay:
                yield env.timeout(consumer_delay)

    env.process(sender())
    env.process(receiver())
    env.run(until=60.0)
    assert received == list(range(n_msgs))


@settings(max_examples=30, deadline=None)
@given(
    n_msgs=st.integers(min_value=2, max_value=20),
    outage_at=st.floats(min_value=0.001, max_value=0.05),
    outage_len=st.floats(min_value=0.1, max_value=2.0),
)
def test_no_loss_across_a_transient_outage(n_msgs, outage_at, outage_len):
    """Messages sent while the path flaps are delayed, never lost."""
    env, net, a, b, conn = build(window=4)
    received = []

    def sender():
        for i in range(n_msgs):
            yield conn.endpoint(a).send(i)

    def receiver():
        while len(received) < n_msgs:
            msg = yield conn.endpoint(b).recv()
            received.append(msg)

    def outage():
        yield env.timeout(outage_at)
        net.link(b).up = False
        yield env.timeout(outage_len)
        net.link(b).up = True

    env.process(sender())
    env.process(receiver())
    env.process(outage())
    env.run(until=outage_at + outage_len + 30.0)
    assert received == list(range(n_msgs))


@settings(max_examples=30, deadline=None)
@given(reset_after=st.integers(min_value=0, max_value=10))
def test_reset_is_always_terminal_for_the_reader(reset_after):
    env, net, a, b, conn = build(window=4)
    got = []

    def sender():
        try:
            for i in range(20):
                yield conn.endpoint(a).send(i)
        except ConnectionClosed:
            pass

    def receiver():
        while True:
            msg = yield conn.endpoint(b).recv()
            got.append(msg)
            if msg is CLOSED:
                return

    def resetter():
        for _ in range(reset_after):
            yield env.timeout(0.0005)
        conn.reset()

    env.process(sender())
    env.process(receiver())
    env.process(resetter())
    env.run(until=10.0)
    assert got and got[-1] is CLOSED
    payload = got[:-1]
    assert payload == sorted(payload)  # prefix, in order, no duplicates
    assert len(set(payload)) == len(payload)
