"""Synthetic flight records for the availability-accounting tests.

Builds scripted throughput timelines (no simulation) in the shape the
recorder captures, so attribution/budget/timeline behaviour can be
pinned deterministically and fast.
"""

from repro.faults.campaign import CampaignConfig, ExperimentTrace
from repro.faults.types import FaultComponent, FaultKind
from repro.obs.events import TraceEvent
from repro.obs.recorder import FlightRecord
from repro.sim.series import MarkerLog, ThroughputSeries


def synth_series(segments):
    """A ThroughputSeries from (t_start, t_end, rate) segments."""
    series = ThroughputSeries()
    for start, end, rate in segments:
        if rate <= 0:
            continue
        gap = 1.0 / rate
        if gap > (end - start):
            continue
        t = start
        while t < end:
            series.record(t)
            t += gap
    return series


def make_trace(segments, t_inject, t_repair, t_end, markers=None,
               normal=100.0, offered=100.0, t_reset=None,
               kind=FaultKind.NODE_CRASH, config=None):
    return ExperimentTrace(
        component=FaultComponent(kind, "n1"),
        config=config or CampaignConfig(),
        series=synth_series(segments),
        markers=markers or MarkerLog(),
        t_inject=t_inject,
        t_repair=t_repair,
        t_end=t_end,
        normal_tput=normal,
        offered_rate=offered,
        t_reset=t_reset,
        version="SYNTH",
    )


def detected_at(t, mechanism="heartbeat", observer="n2", target="n1"):
    """Matching marker + structured event for one detection."""
    marker = (t, "detected", (mechanism, observer, target))
    event = TraceEvent(time=t, kind="detected", source=observer,
                       data={"mechanism": mechanism, "observer": observer,
                             "target": target})
    return marker, event


def make_record(trace, events=(), seed=0, profile="synth"):
    return FlightRecord.from_experiment(
        trace, events=list(events), seed=seed, profile=profile,
        target=trace.component.target,
    )


def standard_detected_record(normal=100.0, offered=100.0):
    """The canonical detected-and-self-recovering experiment.

    normal until 60, near-zero 60..75 (detection at 75), a 10 s
    reconfiguration transient, degraded at 70 until repair at 150, a
    re-integration transient, back to normal until 240.
    """
    markers = MarkerLog()
    marker, event = detected_at(75.0)
    markers.mark(*marker[:2], marker[2])
    segments = [(0, 60, normal), (60, 75, 1.0), (75, 85, 40.0),
                (85, 150, 70.0), (150, 160, 85.0), (160, 240, normal)]
    trace = make_trace(segments, t_inject=60.0, t_repair=150.0, t_end=240.0,
                       markers=markers, normal=normal, offered=offered)
    return make_record(trace, events=[event])
