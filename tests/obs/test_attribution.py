"""Stage attribution on scripted timelines, including the edge cases:
undetected faults (no stage B), no operator reset (no F/G),
zero-throughput windows, and the fit cross-check."""

import pytest

from repro.obs.attribution import (
    RESIDUAL_STAGE,
    AttributionConfig,
    StageAttributor,
)
from repro.sim.series import MarkerLog

from tests.obs.synth import detected_at, make_record, make_trace, standard_detected_record


def attribute(record):
    return StageAttributor().attribute(record)


class TestDetectedSelfRecovering:
    def test_slices_partition_the_fault_window(self):
        report = attribute(standard_detected_record())
        stages = [s.stage for s in report.slices]
        assert stages[:4] == ["A", "B", "C", "D"]
        # contiguous, gap-free partition from injection to end
        assert report.slices[0].t0 == 60.0
        for prev, cur in zip(report.slices, report.slices[1:]):
            assert cur.t0 == pytest.approx(prev.t1)
        assert report.slices[-1].t1 == 240.0

    def test_stage_a_matches_detection_event(self):
        report = attribute(standard_detected_record())
        a = report.slices[0]
        assert (a.t0, a.t1) == (60.0, 75.0)
        assert a.cause == "undetected-window"

    def test_every_slice_is_fully_named(self):
        report = attribute(standard_detected_record())
        for s in report.slices:
            assert s.fault == "node_crash"
            assert s.component == "n1"
            assert s.cause

    def test_loss_concentrated_in_named_stages(self):
        report = attribute(standard_detected_record())
        assert report.total_lost > 0
        assert report.coverage >= 0.95
        assert report.attributed_lost + report.residual_lost == \
            pytest.approx(report.total_lost)

    def test_cross_check_agrees_with_fitter(self):
        report = attribute(standard_detected_record())
        checked = {c.stage for c in report.checks}
        assert {"A", "B", "D"} <= checked
        assert report.agrees_with_fit
        for c in report.checks:
            assert abs(c.delta) <= c.tolerance

    def test_loss_accounting_against_hand_integral(self):
        # stage A: 15 s at ~1 req/s against 100 offered ~ 1485 req-s lost
        report = attribute(standard_detected_record())
        a = report.slices[0]
        assert a.offered == pytest.approx(1500.0)
        assert a.lost == pytest.approx(1485.0, rel=0.01)


class TestUndetectedFault:
    """Fault repaired before any detection: stage B must not exist."""

    def _record(self):
        segments = [(0, 60, 100.0), (60, 90, 70.0), (90, 95, 85.0),
                    (95, 180, 100.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=90.0,
                           t_end=180.0)
        return make_record(trace)

    def test_no_stage_b_or_c(self):
        report = attribute(self._record())
        stages = [s.stage for s in report.slices]
        assert "B" not in stages
        assert "C" not in stages
        assert stages[0] == "A"

    def test_stage_a_spans_the_whole_fault(self):
        report = attribute(self._record())
        a = report.slices[0]
        assert (a.t0, a.t1) == (60.0, 90.0)
        assert a.cause == "undetected-fault"

    def test_detection_after_repair_is_noted(self):
        markers = MarkerLog()
        marker, event = detected_at(95.0)
        markers.mark(marker[0], marker[1], marker[2])
        segments = [(0, 60, 100.0), (60, 90, 70.0), (90, 180, 100.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=90.0,
                           t_end=180.0, markers=markers)
        report = attribute(make_record(trace, events=[event]))
        assert [s.stage for s in report.slices][0] == "A"
        assert any("after repair" in n for n in report.notes)


class TestNoOperatorReset:
    """Self-recovering experiments must not produce stages F/G."""

    def test_f_g_absent_when_no_reset(self):
        report = attribute(standard_detected_record())
        stages = {s.stage for s in report.slices}
        assert not ({"F", "G"} & stages)
        assert report.self_recovered
        assert {c.stage for c in report.checks}.isdisjoint({"F", "G"})

    def test_flat_degraded_plateau_becomes_stage_e(self):
        # After repair the service plateaus at 60% of normal and never
        # climbs: not self-recovered, stage E with the operator cause.
        markers = MarkerLog()
        marker, event = detected_at(65.0)
        markers.mark(marker[0], marker[1], marker[2])
        segments = [(0, 60, 100.0), (60, 65, 1.0), (65, 120, 70.0),
                    (120, 240, 60.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=120.0,
                           t_end=240.0, markers=markers)
        report = attribute(make_record(trace, events=[event]))
        e = [s for s in report.slices if s.stage == "E"]
        assert e and e[-1].cause == "stable-suboptimal-awaiting-operator"
        assert not report.self_recovered


class TestOperatorReset:
    def _record(self):
        markers = MarkerLog()
        marker, event = detected_at(65.0)
        markers.mark(marker[0], marker[1], marker[2])
        # reconfiguration transient, degraded through repair, flat
        # suboptimal until the operator resets at 180; 10 s outage;
        # re-warm until normal at 220.
        segments = [(0, 60, 100.0), (60, 65, 1.0), (65, 75, 40.0),
                    (75, 120, 70.0), (120, 130, 85.0), (130, 180, 60.0),
                    (190, 220, 80.0), (220, 300, 100.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=120.0,
                           t_end=300.0, markers=markers, t_reset=180.0)
        return make_record(trace, events=[event])

    def test_full_stage_ladder(self):
        report = attribute(self._record())
        stages = [s.stage for s in report.slices]
        for required in ("A", "B", "C", "D", "E", "F", "G"):
            assert required in stages
        assert not report.self_recovered

    def test_stage_f_is_the_reset_outage(self):
        report = attribute(self._record())
        f = next(s for s in report.slices if s.stage == "F")
        assert f.t0 == 180.0
        assert f.t1 == pytest.approx(190.0)  # config reset_duration
        assert f.cause == "operator-reset-downtime"
        assert f.served == 0  # nothing served during the restart

    def test_coverage_with_reset(self):
        report = attribute(self._record())
        assert report.coverage >= 0.95


class TestZeroThroughputWindows:
    def test_totally_dead_fault_window(self):
        # Throughput is exactly zero from injection to repair (no
        # samples at all in the window) and detection never happens.
        segments = [(0, 60, 100.0), (90, 180, 100.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=90.0,
                           t_end=180.0)
        report = attribute(make_record(trace))
        a = report.slices[0]
        assert a.served == 0
        assert a.lost == pytest.approx(a.offered) == pytest.approx(3000.0)
        assert report.coverage >= 0.95

    def test_zero_throughput_with_detection(self):
        markers = MarkerLog()
        marker, event = detected_at(70.0)
        markers.mark(marker[0], marker[1], marker[2])
        segments = [(0, 60, 100.0), (120, 130, 80.0), (130, 220, 100.0)]
        trace = make_trace(segments, t_inject=60.0, t_repair=120.0,
                           t_end=220.0, markers=markers)
        report = attribute(make_record(trace, events=[event]))
        # B's target level is ~0; the scan must place boundaries without
        # dividing by zero and keep the partition exact.
        for prev, cur in zip(report.slices, report.slices[1:]):
            assert cur.t0 == pytest.approx(prev.t1)
        assert report.total_lost == pytest.approx(
            sum(s.lost for s in report.slices))

    def test_empty_series_does_not_crash(self):
        trace = make_trace([], t_inject=10.0, t_repair=20.0, t_end=40.0,
                           normal=100.0, offered=100.0)
        report = attribute(make_record(trace))
        assert report.total_lost == pytest.approx(100.0 * 30.0)


class TestConfig:
    def test_bucket_controls_integration_grid(self):
        record = standard_detected_record()
        coarse = StageAttributor(AttributionConfig(bucket=5.0))
        fine = StageAttributor(AttributionConfig(bucket=0.5))
        # same partition, slightly different clamped integrals
        a, b = coarse.attribute(record), fine.attribute(record)
        assert [s.stage for s in a.slices] == [s.stage for s in b.slices]
        assert a.total_lost == pytest.approx(b.total_lost, rel=0.1)

    def test_residual_is_labelled(self):
        report = attribute(standard_detected_record())
        residual = [s for s in report.slices if s.stage == RESIDUAL_STAGE]
        assert residual and residual[0].cause == "recovered-steady"
