"""The bench runner, regression gate, and trend ledger (repro.bench)."""

import json

import pytest

from repro.bench import (
    BenchReport,
    append_trend,
    format_bench,
    format_trend,
    gate,
    read_baseline,
    read_trend,
    run_bench,
    sparkline,
    trend_record,
)
from repro.obs.perf import ModeRun, ScenarioReport


def _scenario_report(name="steady", eps=100_000.0, digest="d", on_digest=None,
                     overhead_unsub=1.1, overhead_on=1.4):
    """Fabricate a ScenarioReport with controlled headline numbers."""
    report = ScenarioReport(scenario=name, description=f"{name} desc", cells=1)
    wall = 1.0
    report.runs["off"] = ModeRun("off", wall, int(eps * wall), int(eps * wall),
                                 0, digest)
    report.runs["unsub"] = ModeRun("unsub", wall * overhead_unsub,
                                   int(eps * wall), int(eps * wall), 50, digest)
    report.runs["on"] = ModeRun("on", wall * overhead_on, int(eps * wall),
                                int(eps * wall), 50,
                                on_digest if on_digest is not None else digest)
    report.attribution = {"by_subsystem": {"press": 0.6, "kernel": 0.2}}
    report.attribution_digest = digest
    return report


def _bench_report(scenarios=None, dirty=False):
    scenarios = scenarios or {"steady": _scenario_report()}
    return BenchReport(
        scenarios=scenarios,
        provenance={"git_sha": "abc123def456", "git_dirty": dirty,
                    "host": "testhost", "host_fingerprint": "fp0000000000",
                    "machine": "x86_64", "cpu_count": 8, "python": "3.11.0",
                    "timestamp": 1_700_000_000.0},
        peak_rss_kb=50_000,
    )


def _baseline(eps=100_000.0, ceilings=None):
    doc = {"schema": 1,
           "scenarios": {"steady": {"events_per_sec": eps,
                                    "wall_per_cell": 1.0}}}
    if ceilings:
        doc["gate"] = ceilings
    return doc


class TestRunBench:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_bench(["nope"])


class TestGate:
    def test_passes_at_baseline(self):
        verdict = gate(_bench_report(), _baseline(), min_cores=0)
        assert verdict.ok
        assert any("digests identical" in n for n in verdict.notes)
        assert "gate PASSED" in verdict.describe()

    def test_digest_divergence_fails_even_on_small_hosts(self):
        report = _bench_report(
            {"steady": _scenario_report(digest="a", on_digest="b")})
        verdict = gate(report, _baseline(), min_cores=10**6)
        assert not verdict.ok
        assert any("digests diverged" in f for f in verdict.failures)
        assert "gate FAILED" in verdict.describe()

    def test_speed_regression_fails_on_big_hosts(self):
        report = _bench_report({"steady": _scenario_report(eps=70_000.0)})
        verdict = gate(report, _baseline(eps=100_000.0), tolerance=0.20,
                       min_cores=0)
        assert not verdict.ok
        assert any("below floor" in f for f in verdict.failures)

    def test_speed_regression_skipped_on_small_hosts(self):
        report = _bench_report({"steady": _scenario_report(eps=70_000.0)})
        verdict = gate(report, _baseline(eps=100_000.0), min_cores=10**6)
        assert verdict.ok
        assert any("speed/overhead gates" in s for s in verdict.skipped)

    def test_within_tolerance_passes(self):
        report = _bench_report({"steady": _scenario_report(eps=85_000.0)})
        assert gate(report, _baseline(eps=100_000.0), tolerance=0.20,
                    min_cores=0).ok

    def test_overhead_ceiling_enforced(self):
        report = _bench_report({"steady": _scenario_report(overhead_on=3.0)})
        baseline = _baseline(ceilings={"max_overhead_on": 2.0})
        verdict = gate(report, baseline, min_cores=0)
        assert not verdict.ok
        assert any("overhead (on)" in f for f in verdict.failures)
        # ...but not when the host is too small to time reliably.
        assert gate(report, baseline, min_cores=10**6).ok

    def test_unsub_overhead_ceiling(self):
        report = _bench_report({"steady": _scenario_report(overhead_unsub=2.0)})
        baseline = _baseline(ceilings={"max_overhead_unsub": 1.5})
        verdict = gate(report, baseline, min_cores=0)
        assert any("overhead (unsub)" in f for f in verdict.failures)

    def test_spans_overhead_ceiling(self):
        report = _bench_report({"steady": _scenario_report()})
        sc = report.scenarios["steady"]
        sc.runs["spans"] = ModeRun("spans", 4.0, 100_000, 100_000, 50, "d",
                                   spans_recorded=123)
        baseline = _baseline(ceilings={"max_overhead_spans": 3.0})
        verdict = gate(report, baseline, min_cores=0)
        assert any("overhead (spans)" in f for f in verdict.failures)

    def test_spans_ceiling_skipped_when_mode_absent(self):
        # A baseline that caps span overhead must not fail a bench run
        # that never measured the spans mode (e.g. --scenario subsets).
        report = _bench_report({"steady": _scenario_report()})
        baseline = _baseline(ceilings={"max_overhead_spans": 3.0})
        assert gate(report, baseline, min_cores=0).ok

    def test_scenario_missing_from_baseline_is_skipped(self):
        report = _bench_report({"crash": _scenario_report(name="crash")})
        verdict = gate(report, _baseline(), min_cores=0)
        assert verdict.ok
        assert any("not in baseline" in s for s in verdict.skipped)


class TestBenchReport:
    def test_ok_tracks_digest_equality(self):
        assert _bench_report().ok
        bad = _bench_report({"s": _scenario_report(digest="a", on_digest="b")})
        assert not bad.ok

    def test_to_dict_shape(self):
        doc = _bench_report().to_dict()
        assert doc["schema"] == 1
        assert doc["ok"] is True
        assert doc["peak_rss_kb"] == 50_000
        assert "steady" in doc["scenarios"]
        assert doc["provenance"]["host"] == "testhost"

    def test_format_bench(self):
        text = format_bench(_bench_report())
        assert "abc123def456"[:12] in text
        assert "events/sec" in text
        assert "overhead unsubscribed" in text
        assert "digests equal        : yes" in text
        assert "hot subsystems" in text
        assert "press" in text

    def test_format_bench_flags_divergence_and_dirty_tree(self):
        report = _bench_report(
            {"s": _scenario_report(name="s", digest="a", on_digest="b")},
            dirty=True)
        text = format_bench(report)
        assert "OBS PERTURBED" in text
        assert "+dirty" in text


class TestTrendLedger:
    def test_trend_record_headline(self):
        record = trend_record(_bench_report())
        assert record["ok"] is True
        assert record["provenance"]["git_sha"] == "abc123def456"
        head = record["headline"]["steady"]
        assert head["events_per_sec"] == pytest.approx(100_000.0)
        assert head["overhead_unsub"] == pytest.approx(1.1)
        assert head["overhead_on"] == pytest.approx(1.4)

    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "TREND.jsonl")
        first = append_trend(_bench_report(), path)
        append_trend(_bench_report(), path)
        records = read_trend(path)
        assert len(records) == 2
        assert records[0] == first

    def test_read_missing_ledger_is_empty(self, tmp_path):
        assert read_trend(str(tmp_path / "none.jsonl")) == []

    def test_read_baseline(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(json.dumps(_baseline()))
        assert read_baseline(str(path))["scenarios"]["steady"][
            "events_per_sec"] == 100_000.0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotonic_series_spans_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_single_entry_renders_one_glyph(self):
        # a fresh ledger has exactly one record; the line must not be
        # blank or raise on the zero span
        line = sparkline([171518.9])
        assert len(line) == 1

    def test_non_finite_values_render_flat_not_crash(self):
        # a corrupt or hand-edited TREND line must not take down --trend
        line = sparkline([1.0, float("nan"), 2.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[2] == "█"
        assert sparkline([float("inf")]) == sparkline([5.0])
        assert len(sparkline([float("nan"), float("nan")])) == 2


class TestFormatTrend:
    def _records(self, n=3, host="fp0000000000"):
        out = []
        for i in range(n):
            out.append({
                "provenance": {"git_sha": f"sha{i}00000000", "git_dirty": i == 1,
                               "host_fingerprint": host,
                               "timestamp": 1_700_000_000.0 + i * 3600},
                "headline": {"steady": {"events_per_sec": 100_000.0 + i * 1000,
                                        "wall_per_cell": 1.0,
                                        "overhead_unsub": 1.1,
                                        "overhead_on": 1.4}},
            })
        return out

    def test_empty_ledger_message(self):
        assert "empty" in format_trend([])

    def test_table_and_sparkline(self):
        text = format_trend(self._records())
        assert "sha0000000" in text
        assert "sha1000000*" in text  # dirty flag
        assert "steady" in text
        assert "last 102,000" in text
        assert "note:" not in text

    def test_mixed_hosts_flagged(self):
        records = self._records(2) + self._records(1, host="fpffffffffff")
        assert "distinct hosts" in format_trend(records)

    def test_unknown_scenario_filter(self):
        assert "no trend data" in format_trend(self._records(), scenario="nope")

    def test_scenario_filter(self):
        text = format_trend(self._records(), scenario="steady")
        assert "steady" in text
