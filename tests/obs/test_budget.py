"""Error-budget rollups: stage decomposition vs the analytic model."""

import pytest

from repro.core.model import AvailabilityModel, EnvironmentParams
from repro.core.template import STAGE_NAMES, TemplateFitter
from repro.faults.faultload import HOUR, MONTH, FaultCatalog, FaultRate
from repro.faults.types import FaultKind
from repro.obs.budget import (
    budget_from_records,
    build_budget,
    format_budget,
)

from tests.obs.synth import standard_detected_record

ENV = EnvironmentParams(operator_response=600.0, reset_duration=10.0)


def fitted_template(record=None):
    record = record or standard_detected_record()
    return TemplateFitter().fit(record.to_trace())


def one_kind_catalog(kind=FaultKind.NODE_CRASH, mttf=MONTH, mttr=HOUR,
                     count=4):
    return FaultCatalog([FaultRate(kind=kind, mttf=mttf, mttr=mttr,
                                   count=count)])


class TestBuildBudget:
    def test_total_matches_model_unavailability(self):
        template = fitted_template()
        catalog = one_kind_catalog()
        templates = {FaultKind.NODE_CRASH: template}
        budget = build_budget(templates, catalog, offered_rate=100.0,
                              version="SYNTH", environment=ENV)
        model = AvailabilityModel(catalog, ENV).evaluate(
            templates, normal_tput=100.0, offered_rate=100.0,
            version="SYNTH")
        # per-stage clamping can only add; equality when no stage serves
        # above the offered load
        assert budget.total_unavailability == pytest.approx(
            model.unavailability, rel=1e-9)

    def test_lines_are_stage_resolved(self):
        budget = build_budget({FaultKind.NODE_CRASH: fitted_template()},
                              one_kind_catalog(), offered_rate=100.0,
                              environment=ENV)
        stages = {line.stage for line in budget.lines}
        assert stages <= set(STAGE_NAMES)
        assert "C" in stages  # MTTR-supplied stage dominates
        for line in budget.lines:
            assert line.duration > 0
            assert line.cause
            assert line.unavailability >= 0

    def test_sorted_by_contribution(self):
        budget = build_budget({FaultKind.NODE_CRASH: fitted_template()},
                              one_kind_catalog(), offered_rate=100.0,
                              environment=ENV)
        u = [line.unavailability for line in budget.lines]
        assert u == sorted(u, reverse=True)

    def test_objective_and_consumption(self):
        budget = build_budget({FaultKind.NODE_CRASH: fitted_template()},
                              one_kind_catalog(), offered_rate=100.0,
                              environment=ENV, objective=0.99)
        assert budget.budget == pytest.approx(0.01)
        assert budget.consumed == pytest.approx(
            budget.total_unavailability / 0.01)
        assert budget.availability == pytest.approx(
            1.0 - budget.total_unavailability)

    def test_missing_kinds_reported_not_budgeted(self):
        catalog = FaultCatalog([
            FaultRate(FaultKind.NODE_CRASH, MONTH, HOUR, 4),
            FaultRate(FaultKind.APP_CRASH, MONTH, HOUR, 4),
        ])
        budget = build_budget({FaultKind.NODE_CRASH: fitted_template()},
                              catalog, offered_rate=100.0, environment=ENV)
        assert budget.missing_kinds == [FaultKind.APP_CRASH]
        assert all(l.fault is FaultKind.NODE_CRASH for l in budget.lines)

    def test_rollups(self):
        budget = build_budget({FaultKind.NODE_CRASH: fitted_template()},
                              one_kind_catalog(), offered_rate=100.0,
                              environment=ENV)
        assert sum(budget.by_stage().values()) == pytest.approx(
            budget.total_unavailability)
        assert sum(budget.by_fault().values()) == pytest.approx(
            budget.total_unavailability)

    def test_validation(self):
        with pytest.raises(ValueError, match="offered_rate"):
            build_budget({}, one_kind_catalog(), offered_rate=0.0)
        with pytest.raises(ValueError, match="objective"):
            build_budget({}, one_kind_catalog(), offered_rate=100.0,
                         objective=1.0)


class TestBudgetFromRecords:
    def test_requires_records(self):
        with pytest.raises(ValueError, match="no flight records"):
            budget_from_records([])

    def test_rejects_mixed_versions(self):
        a = standard_detected_record()
        b = standard_detected_record()
        b.version = "OTHER"
        with pytest.raises(ValueError, match="multiple versions"):
            budget_from_records([a, b], catalog=one_kind_catalog())

    def test_end_to_end_with_explicit_catalog(self):
        record = standard_detected_record()
        budget = budget_from_records([record], environment=ENV,
                                     catalog=one_kind_catalog())
        assert budget.version == "SYNTH"
        assert budget.lines
        assert len(budget.measured) == 1
        measured = budget.measured[0]
        assert measured.coverage >= 0.95
        assert measured.agrees_with_fit

    def test_json_round_trip_shape(self):
        record = standard_detected_record()
        budget = budget_from_records([record], environment=ENV,
                                     catalog=one_kind_catalog())
        payload = budget.to_dict()
        assert payload["version"] == "SYNTH"
        assert payload["lines"]
        assert payload["measured"][0]["coverage"] >= 0.95
        import json

        json.dumps(payload)  # must be JSON-serializable


class TestFormatBudget:
    def test_renders_drilldown_and_measurements(self):
        record = standard_detected_record()
        budget = budget_from_records([record], environment=ENV,
                                     catalog=one_kind_catalog())
        text = format_budget(budget)
        assert "unavailability" in text
        assert "stable-degraded-capacity" in text
        assert "per-stage rollup" in text
        assert "measured experiments" in text
        assert "% attributed" in text

    def test_top_truncation(self):
        record = standard_detected_record()
        budget = budget_from_records([record], environment=ENV,
                                     catalog=one_kind_catalog())
        text = format_budget(budget, top=1)
        assert "(other lines)" in text
