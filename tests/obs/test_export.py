"""Exporters: JSONL/CSV round trips and metrics rendering."""

import io
import json

import pytest

from repro.faults.types import FaultComponent, FaultKind
from repro.obs.export import (
    dumps_jsonl,
    event_from_dict,
    event_to_dict,
    format_metrics,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import MetricsHub
from repro.obs.trace import Tracer


def _sample_events():
    tr = Tracer()
    tr.emit("fault_injected", source="injector", time=100.0,
            fault=FaultComponent(FaultKind.NODE_CRASH, "n1"))
    tr.emit("detected", source="0", time=112.5,
            mechanism="heartbeat", observer=0, target=1)
    tr.emit("memb_view", source="n0", time=113.0,
            members=[0, 2, 3], version=7, dropped=[1], added=[])
    tr.emit("queue_saturated", source="n2", time=115.25,
            queue="n2->n1.sq", action="reroute")
    return tr.events


class TestJsonl:
    def test_round_trip_exact(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(events, path) == len(events)
        assert read_jsonl(path) == events

    def test_missing_parent_dirs_created(self, tmp_path):
        # a bare checkout has no results/ dir: --out must still work
        events = _sample_events()
        path = str(tmp_path / "results" / "nested" / "trace.jsonl")
        assert write_jsonl(events, path) == len(events)
        assert read_jsonl(path) == events

    def test_file_object_round_trip(self):
        events = _sample_events()
        buf = io.StringIO()
        write_jsonl(events, buf)
        buf.seek(0)
        assert read_jsonl(buf) == events

    def test_each_line_is_json(self):
        for line in dumps_jsonl(_sample_events()).splitlines():
            record = json.loads(line)
            assert set(record) == {"time", "kind", "source", "data"}

    def test_dict_round_trip(self):
        event = _sample_events()[0]
        assert event_from_dict(event_to_dict(event)) == event


class TestCsv:
    def test_round_trip_exact(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "trace.csv")
        assert write_csv(events, path) == len(events)
        assert read_csv(path) == events

    def test_missing_parent_dirs_created(self, tmp_path):
        events = _sample_events()
        path = str(tmp_path / "results" / "trace.csv")
        assert write_csv(events, path) == len(events)
        assert read_csv(path) == events

    def test_header_validated(self):
        buf = io.StringIO("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_csv(buf)

    def test_float_times_survive_exactly(self):
        events = _sample_events()
        buf = io.StringIO()
        write_csv(events, buf)
        buf.seek(0)
        assert [e.time for e in read_csv(buf)] == [e.time for e in events]


class TestMetricsExport:
    def _snapshot(self):
        hub = MetricsHub()
        hub.counter("hits", node="n0").inc(3)
        hub.gauge("depth", node="n0").set(7)
        hub.histogram("lat").observe(0.02)
        return hub.snapshot()

    def test_json_dump(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_metrics_json(self._snapshot(), path)
        with open(path) as fp:
            loaded = json.load(fp)
        assert loaded == self._snapshot()

    def test_format_metrics_lines(self):
        text = format_metrics(self._snapshot())
        assert "hits{node=n0}" in text
        assert "depth{node=n0}" in text
        assert "count=1" in text

    def test_empty_snapshot(self):
        assert format_metrics([]) == ""
