"""Kernel profiling hooks and the Telemetry bundle."""

from repro.obs.kernelprof import KernelProfiler, callback_owner
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.kernel import Environment


def _ticker(env, period):
    while True:
        yield env.timeout(period)


class TestKernelProfiler:
    def test_counts_events_and_owners(self):
        env = Environment()
        profiler = KernelProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="tick-a")
        env.process(_ticker(env, 2.0), name="tick-b")
        env.run(until=10.0)
        assert profiler.events_processed > 0
        assert profiler.events_scheduled >= profiler.events_processed
        assert profiler.queue_high_water >= 1
        # Each process resumption is attributed to the Process name
        # (the start bootstrap plus one per expired timeout).
        assert profiler.by_owner["tick-a"] == 11
        assert profiler.by_owner["tick-b"] == 6

    def test_same_run_with_and_without_monitor_is_identical(self):
        def run(monitor):
            env = Environment(monitor=monitor)
            seen = []

            def recorder():
                while True:
                    yield env.timeout(0.5)
                    seen.append(env.now)

            env.process(recorder(), name="rec")
            env.run(until=5.0)
            return seen

        assert run(None) == run(KernelProfiler())

    def test_detach_restores_fast_path(self):
        env = Environment()
        profiler = KernelProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        counted = profiler.events_processed
        env.set_monitor(None)
        assert env.monitor is None
        env.run(until=10.0)
        assert profiler.events_processed == counted

    def test_top_and_report(self):
        profiler = KernelProfiler()
        profiler.by_owner.update({"a": 5, "b": 9, "c": 1})
        assert profiler.top(2) == [("b", 9), ("a", 5)]
        text = profiler.report(top_n=2)
        assert "events processed" in text and "b" in text

    def test_uncollected_events_counted(self):
        profiler = KernelProfiler()
        profiler.on_event(object(), [])
        assert profiler.by_owner == {"(uncollected)": 1}

    def test_snapshot_is_plain_data(self):
        profiler = KernelProfiler()
        profiler.on_schedule(3)
        snap = profiler.snapshot()
        assert snap["events_scheduled"] == 1
        assert snap["queue_high_water"] == 3


class TestCallbackOwner:
    def test_bound_method_uses_owner_name(self):
        class Proc:
            name = "n0.main"

            def resume(self, ev):
                pass

        assert callback_owner(Proc().resume) == "n0.main"

    def test_bound_method_without_name_uses_type(self):
        class Thing:
            def cb(self, ev):
                pass

        assert callback_owner(Thing().cb) == "Thing"

    def test_plain_function_uses_qualname(self):
        def handler(ev):
            pass

        assert "handler" in callback_owner(handler)


class TestTelemetry:
    def test_enabled_bundle(self):
        tm = Telemetry(profile_kernel=True)
        env = Environment()
        tm.attach(env)
        assert env.monitor is tm.profiler
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        assert tm.profiler.events_processed > 0
        assert tm.tracer.emit("server_start").time == 3.0

    def test_disabled_bundle_is_inert(self):
        tm = Telemetry.disabled()
        env = Environment()
        tm.attach(env)
        assert env.monitor is None
        assert tm.tracer.emit("server_start") is None
        tm.metrics.counter("x").inc()
        assert tm.metrics.snapshot() == []
        assert tm.profiler is None
        assert not tm.trace_requests

    def test_profiler_requires_enabled(self):
        assert Telemetry(enabled=False, profile_kernel=True).profiler is None

    def test_marker_log_mirrors_into_tracer(self):
        tm = Telemetry()
        log = tm.marker_log()
        log.mark(1.0, "detected", ("heartbeat", 0, 1))
        assert len(tm.tracer) == 1
        assert tm.tracer.first("detected").data["mechanism"] == "heartbeat"

    def test_null_telemetry_shared(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.tracer.emit("x") is None
