"""Kernel profiling hooks and the Telemetry bundle."""

import pytest

from repro.obs.kernelprof import KernelProfiler, callback_owner
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.kernel import Environment


def _ticker(env, period):
    while True:
        yield env.timeout(period)


class TestKernelProfiler:
    def test_counts_events_and_owners(self):
        env = Environment()
        profiler = KernelProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="tick-a")
        env.process(_ticker(env, 2.0), name="tick-b")
        env.run(until=10.0)
        assert profiler.events_processed > 0
        assert profiler.events_scheduled >= profiler.events_processed
        assert profiler.queue_high_water >= 1
        # Each process resumption is attributed to the Process name
        # (the start bootstrap plus one per expired timeout).
        assert profiler.by_owner["tick-a"] == 11
        assert profiler.by_owner["tick-b"] == 6

    def test_same_run_with_and_without_monitor_is_identical(self):
        def run(monitor):
            env = Environment(monitor=monitor)
            seen = []

            def recorder():
                while True:
                    yield env.timeout(0.5)
                    seen.append(env.now)

            env.process(recorder(), name="rec")
            env.run(until=5.0)
            return seen

        assert run(None) == run(KernelProfiler())

    def test_detach_restores_fast_path(self):
        env = Environment()
        profiler = KernelProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        counted = profiler.events_processed
        env.set_monitor(None)
        assert env.monitor is None
        env.run(until=10.0)
        assert profiler.events_processed == counted

    def test_top_and_report(self):
        profiler = KernelProfiler()
        profiler.by_owner.update({"a": 5, "b": 9, "c": 1})
        assert profiler.top(2) == [("b", 9), ("a", 5)]
        text = profiler.report(top_n=2)
        assert "events processed" in text and "b" in text

    def test_uncollected_events_counted(self):
        profiler = KernelProfiler()
        profiler.on_event(object(), [])
        assert profiler.by_owner == {"(uncollected)": 1}

    def test_snapshot_is_plain_data(self):
        profiler = KernelProfiler()
        profiler.on_schedule(3)
        snap = profiler.snapshot()
        assert snap["events_scheduled"] == 1
        assert snap["queue_high_water"] == 3


class TestCallbackOwner:
    def test_bound_method_uses_owner_name(self):
        class Proc:
            name = "n0.main"

            def resume(self, ev):
                pass

        assert callback_owner(Proc().resume) == "n0.main"

    def test_bound_method_without_name_uses_type(self):
        class Thing:
            def cb(self, ev):
                pass

        assert callback_owner(Thing().cb) == "Thing"

    def test_plain_function_uses_qualname(self):
        def handler(ev):
            pass

        assert "handler" in callback_owner(handler)


class TestTelemetry:
    def test_enabled_bundle(self):
        tm = Telemetry(profile_kernel=True)
        env = Environment()
        tm.attach(env)
        assert env.monitor is tm.profiler
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        assert tm.profiler.events_processed > 0
        assert tm.tracer.emit("server_start").time == 3.0

    def test_disabled_bundle_is_inert(self):
        tm = Telemetry.disabled()
        env = Environment()
        tm.attach(env)
        assert env.monitor is None
        assert tm.tracer.emit("server_start") is None
        tm.metrics.counter("x").inc()
        assert tm.metrics.snapshot() == []
        assert tm.profiler is None
        assert not tm.trace_requests

    def test_profiler_requires_enabled(self):
        assert Telemetry(enabled=False, profile_kernel=True).profiler is None

    def test_marker_log_mirrors_into_tracer(self):
        tm = Telemetry()
        log = tm.marker_log()
        log.mark(1.0, "detected", ("heartbeat", 0, 1))
        assert len(tm.tracer) == 1
        assert tm.tracer.first("detected").data["mechanism"] == "heartbeat"

    def test_null_telemetry_shared(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.tracer.emit("x") is None


class TestMonitorLifecycle:
    """Install/uninstall/replace semantics of the kernel monitor hook."""

    def test_on_event_brackets_callbacks(self):
        log = []

        class OrderMonitor:
            def on_schedule(self, depth):
                pass

            def on_event(self, event, callbacks):
                log.append("event")

            def on_event_done(self, event):
                log.append("done")

        env = Environment(monitor=OrderMonitor())

        def proc():
            log.append("cb")
            yield env.timeout(1.0)
            log.append("cb")

        env.process(proc(), name="p")
        env.run(until=5.0)
        # Every delivered event is exactly event -> [callbacks...] -> done.
        state = "done"
        for entry in log:
            if entry == "event":
                assert state == "done"
                state = "event"
            elif entry == "cb":
                assert state == "event"
            else:  # done
                assert state == "event"
                state = "done"
        assert state == "done"
        assert log.count("event") == log.count("done") > 0
        assert log.count("cb") == 2

    def test_replace_monitor_mid_run_splits_counts(self):
        env = Environment()
        first, second = KernelProfiler(), KernelProfiler()
        env.set_monitor(first)
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        env.set_monitor(second)
        env.run(until=6.0)
        assert first.events_processed > 0
        assert second.events_processed > 0
        # The kernel's own counter saw every event both profilers saw.
        assert env.processed_count == \
            first.events_processed + second.events_processed

    def test_processed_count_without_monitor(self):
        env = Environment()
        assert env.processed_count == 0
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=5.0)
        assert env.monitor is None
        assert env.processed_count > 0
        assert env.scheduled_count >= env.processed_count

    def test_counts_agree_with_profiler(self):
        env = Environment()
        profiler = KernelProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 0.5), name="t")
        env.run(until=4.0)
        assert env.processed_count == profiler.events_processed
        assert env.scheduled_count == profiler.events_scheduled


class TestProcessType:
    def test_collapses_digit_runs(self):
        from repro.obs.kernelprof import process_type

        assert process_type("n0.main") == "n*.main"
        assert process_type("n17.main") == "n*.main"
        assert process_type("client42") == "client*"
        assert process_type("fe") == "fe"


class TestSubsystemAttribution:
    def test_subsystem_of_path(self):
        from repro.obs.kernelprof import subsystem_of_path

        assert subsystem_of_path("/x/src/repro/press/server.py") == "press"
        assert subsystem_of_path("/x/src/repro/sim/kernel.py") == "kernel"
        assert subsystem_of_path("/x/src/repro/ha/membership.py") == "ha"
        assert subsystem_of_path("C:\\x\\repro\\net\\link.py") == "net"
        assert subsystem_of_path("/x/src/repro/cli.py") == "cli"
        assert subsystem_of_path("/somewhere/else/mod.py") == "other"

    def test_callback_subsystem_prefers_generator_body(self):
        from repro.obs.kernelprof import callback_subsystem

        # A Process resumption is a bound method living in sim/process.py;
        # attribution must follow the *generator body* instead.
        src = "def g():\n    yield\n"
        ns = {}
        exec(compile(src, "/x/src/repro/press/server.py", "exec"), ns)

        class FakeProc:
            name = "n0.main"

            def __init__(self):
                self._generator = ns["g"]()

            def resume(self, ev):
                pass

        assert callback_subsystem(FakeProc().resume) == "press"

    def test_callback_subsystem_plain_function(self):
        from repro.obs.kernelprof import callback_subsystem

        def handler(ev):
            pass

        assert callback_subsystem(handler) == "other"  # test file path

    def test_callback_subsystem_uninspectable(self):
        from repro.obs.kernelprof import callback_subsystem

        assert callback_subsystem(object()) == "other"


class TestTimingProfiler:
    def test_accumulates_time_tables(self):
        from repro.obs.kernelprof import TimingProfiler

        env = Environment()
        profiler = TimingProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="n0.main")
        env.process(_ticker(env, 1.0), name="n1.main")
        env.run(until=10.0)
        assert profiler.wall_seconds > 0.0
        assert "Timeout" in profiler.time_by_kind
        assert profiler.count_by_kind["Timeout"] > 0
        # Instances collapse into one process type.
        assert "n*.main" in profiler.time_by_type
        assert "n0.main" not in profiler.time_by_type
        # The sum over any one table equals total callback time.
        for table in (profiler.time_by_kind, profiler.time_by_type,
                      profiler.time_by_subsystem):
            assert sum(table.values()) == pytest.approx(profiler.wall_seconds)

    def test_uncollected_event_charged_to_kernel(self):
        from repro.obs.kernelprof import TimingProfiler

        profiler = TimingProfiler()
        profiler.on_event(object(), [])
        profiler.on_event_done(object())
        assert set(profiler.time_by_type) == {"(uncollected)"}
        assert set(profiler.time_by_subsystem) == {"kernel"}
        assert profiler.count_by_kind == {"object": 1}

    def test_top_times_ranks_descending(self):
        from repro.obs.kernelprof import TimingProfiler

        profiler = TimingProfiler()
        profiler.time_by_subsystem.update({"press": 0.5, "ha": 0.9, "net": 0.1})
        assert profiler.top_times("subsystem", 2) == [("ha", 0.9), ("press", 0.5)]
        with pytest.raises(KeyError):
            profiler.top_times("nope")

    def test_snapshot_and_report_extend_base(self):
        from repro.obs.kernelprof import TimingProfiler

        env = Environment()
        profiler = TimingProfiler()
        env.set_monitor(profiler)
        env.process(_ticker(env, 1.0), name="t")
        env.run(until=3.0)
        snap = profiler.snapshot()
        assert snap["events_processed"] == profiler.events_processed
        assert snap["wall_seconds"] == profiler.wall_seconds
        assert set(snap["time_by_kind"]) == set(profiler.time_by_kind)
        text = profiler.report(top_n=3)
        assert "wall in callbacks" in text
        assert "subsystem" in text
        assert "event kind" in text

    def test_profile_time_upgrades_telemetry_profiler(self):
        from repro.obs.kernelprof import TimingProfiler

        assert isinstance(Telemetry(profile_time=True).profiler, TimingProfiler)
        assert not isinstance(Telemetry(profile_kernel=True).profiler,
                              TimingProfiler)
        assert Telemetry(enabled=False, profile_time=True).profiler is None

    def test_timing_profiler_does_not_perturb_results(self):
        from repro.obs.kernelprof import TimingProfiler

        def run(monitor):
            env = Environment(monitor=monitor)
            seen = []

            def recorder():
                while True:
                    yield env.timeout(0.5)
                    seen.append(env.now)

            env.process(recorder(), name="rec")
            env.run(until=5.0)
            return seen

        assert run(None) == run(TimingProfiler())
