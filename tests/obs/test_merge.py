"""Deterministic merge helpers behind the parallel executor.

``merge_records`` keys per-cell flight records by fault preserving cell
order; ``merge_budget_reports`` folds per-shard budgets with a
total-order sort key.  Both must reject inputs that mix campaigns.
"""

import pytest

from repro.core.model import EnvironmentParams
from repro.faults.faultload import HOUR, MONTH, FaultCatalog, FaultRate
from repro.faults.types import FaultKind
from repro.obs.budget import budget_from_records, merge_budget_reports
from repro.obs.recorder import merge_records

from tests.obs.synth import make_record, make_trace

ENV = EnvironmentParams(operator_response=600.0, reset_duration=10.0)

SEGMENTS = [(0, 60, 100.0), (60, 75, 1.0), (75, 150, 70.0), (150, 240, 100.0)]


def record_for(kind, seed=0, version="SYNTH"):
    trace = make_trace(SEGMENTS, t_inject=60.0, t_repair=150.0, t_end=240.0,
                       kind=kind)
    trace.version = version
    record = make_record(trace, seed=seed)
    return record


class TestMergeRecords:
    def test_preserves_cell_order(self):
        kinds = [FaultKind.NODE_CRASH, FaultKind.APP_CRASH,
                 FaultKind.APP_HANG]
        merged = merge_records([record_for(k) for k in kinds])
        assert list(merged) == [k.value for k in kinds]

    def test_empty_is_empty(self):
        assert merge_records([]) == {}

    def test_rejects_mixed_versions(self):
        records = [record_for(FaultKind.NODE_CRASH, version="A"),
                   record_for(FaultKind.APP_CRASH, version="B")]
        with pytest.raises(ValueError, match="multiple versions"):
            merge_records(records)

    def test_rejects_mixed_seeds(self):
        records = [record_for(FaultKind.NODE_CRASH, seed=0),
                   record_for(FaultKind.APP_CRASH, seed=1)]
        with pytest.raises(ValueError, match="multiple seeds"):
            merge_records(records)

    def test_rejects_duplicate_fault(self):
        records = [record_for(FaultKind.NODE_CRASH),
                   record_for(FaultKind.NODE_CRASH)]
        with pytest.raises(ValueError, match="duplicate"):
            merge_records(records)


def shard_for(kind, count=4):
    catalog = FaultCatalog([FaultRate(kind=kind, mttf=MONTH, mttr=HOUR,
                                      count=count)])
    return budget_from_records([record_for(kind)], environment=ENV,
                               catalog=catalog)


class TestMergeBudgetReports:
    def test_merged_totals_are_sums(self):
        a = shard_for(FaultKind.NODE_CRASH)
        b = shard_for(FaultKind.APP_CRASH)
        merged = merge_budget_reports([a, b])
        assert merged.total_unavailability == pytest.approx(
            a.total_unavailability + b.total_unavailability)
        assert len(merged.lines) == len(a.lines) + len(b.lines)
        assert len(merged.measured) == 2

    def test_merge_order_invariant(self):
        a = shard_for(FaultKind.NODE_CRASH)
        b = shard_for(FaultKind.APP_CRASH)
        ab = merge_budget_reports([a, b])
        ba = merge_budget_reports([b, a])
        # lines sort under a total order, so shard arrival order cannot
        # change the table (measured attributions do keep shard order)
        assert [l.to_dict() for l in ab.lines] == [l.to_dict() for l in ba.lines]

    def test_lines_sorted_by_contribution(self):
        merged = merge_budget_reports([shard_for(FaultKind.NODE_CRASH),
                                       shard_for(FaultKind.APP_CRASH)])
        u = [l.unavailability for l in merged.lines]
        assert u == sorted(u, reverse=True)

    def test_missing_only_if_missing_everywhere(self):
        # shard A budgets NODE_CRASH but its catalog also lists APP_CRASH
        # (no record -> missing there); shard B budgets APP_CRASH.
        catalog_a = FaultCatalog([
            FaultRate(FaultKind.NODE_CRASH, MONTH, HOUR, 4),
            FaultRate(FaultKind.APP_CRASH, MONTH, HOUR, 4),
        ])
        a = budget_from_records([record_for(FaultKind.NODE_CRASH)],
                                environment=ENV, catalog=catalog_a)
        assert FaultKind.APP_CRASH in a.missing_kinds
        b = shard_for(FaultKind.APP_CRASH)
        merged = merge_budget_reports([a, b])
        assert FaultKind.APP_CRASH not in merged.missing_kinds

    def test_rejects_empty_and_mixed(self):
        with pytest.raises(ValueError, match="no budget"):
            merge_budget_reports([])
        a = shard_for(FaultKind.NODE_CRASH)
        other = budget_from_records(
            [record_for(FaultKind.APP_CRASH, version="OTHER")],
            environment=ENV,
            catalog=FaultCatalog([FaultRate(FaultKind.APP_CRASH, MONTH,
                                            HOUR, 4)]))
        with pytest.raises(ValueError, match="multiple versions"):
            merge_budget_reports([a, other])

    def test_rejects_disagreeing_objectives(self):
        a = budget_from_records([record_for(FaultKind.NODE_CRASH)],
                                environment=ENV, objective=0.999,
                                catalog=FaultCatalog([FaultRate(
                                    FaultKind.NODE_CRASH, MONTH, HOUR, 4)]))
        b = budget_from_records([record_for(FaultKind.APP_CRASH)],
                                environment=ENV, objective=0.99,
                                catalog=FaultCatalog([FaultRate(
                                    FaultKind.APP_CRASH, MONTH, HOUR, 4)]))
        with pytest.raises(ValueError, match="objective"):
            merge_budget_reports([a, b])
