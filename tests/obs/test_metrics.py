"""Metrics registry: instruments, label memoization, null fast path."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_inc(self):
        c = Counter("hits", {})
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_snapshot(self):
        c = Counter("hits", {"node": "n0"})
        c.inc()
        assert c.snapshot() == {"type": "counter", "name": "hits",
                                "labels": {"node": "n0"}, "value": 1.0}


class TestGauge:
    def test_tracks_extremes(self):
        g = Gauge("depth", {})
        g.set(5.0)
        g.inc(3.0)
        g.dec(7.0)
        assert g.value == 1.0
        assert g.max == 8.0
        assert g.min == 1.0

    def test_untouched_snapshot_is_zeroed(self):
        snap = Gauge("depth", {}).snapshot()
        assert snap["max"] == 0.0 and snap["min"] == 0.0


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram("lat", {})
        for v in (0.02, 0.02, 0.2, 3.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx(0.81)

    def test_quantile_returns_bucket_bound(self):
        h = Histogram("lat", {}, buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_overflow_bucket(self):
        h = Histogram("lat", {}, buckets=(1.0,))
        h.observe(99.0)
        assert h.snapshot()["buckets"]["+inf"] == 1
        assert h.quantile(1.0) == float("inf")

    def test_empty_quantile(self):
        h = Histogram("lat", {})
        assert h.quantile(0.9) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", {}, buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", {}, buckets=(1.0, 1.0))


class TestMetricsHub:
    def test_memoizes_on_name_and_labels(self):
        hub = MetricsHub()
        a = hub.counter("hits", node="n0")
        b = hub.counter("hits", node="n0")
        c = hub.counter("hits", node="n1")
        assert a is b
        assert a is not c
        assert len(hub) == 2

    def test_label_order_is_irrelevant(self):
        hub = MetricsHub()
        assert hub.counter("x", a=1, b=2) is hub.counter("x", b=2, a=1)

    def test_kind_collision_raises(self):
        hub = MetricsHub()
        hub.counter("x")
        with pytest.raises(TypeError):
            hub.gauge("x")

    def test_value_query(self):
        hub = MetricsHub()
        hub.counter("hits", node="n0").inc(4)
        assert hub.value("hits", node="n0") == 4.0
        assert hub.value("hits", node="n9") == 0.0
        assert hub.get("hits", node="n9") is None

    def test_snapshot_sorted(self):
        hub = MetricsHub()
        hub.counter("b")
        hub.counter("a", node="n1")
        hub.counter("a", node="n0")
        names = [(m["name"], m["labels"]) for m in hub.snapshot()]
        assert names == [("a", {"node": "n0"}), ("a", {"node": "n1"}),
                         ("b", {})]

    def test_disabled_hub_hands_out_nulls(self):
        hub = MetricsHub(enabled=False)
        assert hub.counter("x") is NULL_COUNTER
        assert hub.gauge("x") is NULL_GAUGE
        assert hub.histogram("x") is NULL_HISTOGRAM
        # Null mutators are no-ops and register nothing.
        hub.counter("x").inc()
        hub.gauge("x").set(3.0)
        hub.histogram("x").observe(1.0)
        assert len(hub) == 0
        assert hub.snapshot() == []
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_custom_histogram_buckets(self):
        hub = MetricsHub()
        h = hub.histogram("lat", buckets=(1.0, 2.0))
        assert h.bounds == (1.0, 2.0)
        default = hub.histogram("lat2")
        assert default.bounds == DEFAULT_BUCKETS


class TestHistogramQuantileSnapshot:
    """p50/p90/p99 ride along in snapshots (the `repro metrics` view)."""

    def test_snapshot_carries_quantiles(self):
        h = Histogram("lat", {}, buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["mean"] == pytest.approx(1.125)
        assert snap["p50"] == 1.0
        assert snap["p90"] == 4.0
        assert snap["p99"] == 4.0

    def test_empty_histogram_quantiles_are_zero(self):
        snap = Histogram("lat", {}).snapshot()
        assert (snap["mean"], snap["p50"], snap["p90"], snap["p99"]) == \
            (0.0, 0.0, 0.0, 0.0)

    def test_format_includes_quantiles(self):
        from repro.obs.export import format_metrics

        hub = MetricsHub()
        hub.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        text = format_metrics(hub.snapshot())
        assert "p50=1" in text
        assert "p99=1" in text

    def test_format_overflow_quantile_is_inf(self):
        from repro.obs.export import format_metrics

        hub = MetricsHub()
        hub.histogram("lat", buckets=(1.0,)).observe(5.0)
        text = format_metrics(hub.snapshot())
        assert "p99=inf" in text


class TestNullInstruments:
    """The shared nulls must be no-ops with all query paths safe."""

    def test_null_counter_inc_is_noop(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(100.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_COUNTER.kind == "counter"

    def test_null_gauge_mutators_are_noops(self):
        NULL_GAUGE.set(42.0)
        NULL_GAUGE.inc(7.0)
        NULL_GAUGE.dec(3.0)
        assert NULL_GAUGE.value == 0.0
        assert NULL_GAUGE.max == 0.0
        assert NULL_GAUGE.min == 0.0

    def test_null_histogram_observe_is_noop(self):
        NULL_HISTOGRAM.observe(1.5)
        NULL_HISTOGRAM.observe(99.0)
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.sum == 0.0
        assert NULL_HISTOGRAM.mean() == 0.0
        # Empty-distribution quantiles are zero, matching a real empty
        # Histogram — callers never need to special-case disabled hubs.
        assert NULL_HISTOGRAM.quantile(0.5) == 0.0
        assert NULL_HISTOGRAM.quantile(0.99) == 0.0

    def test_empty_real_histogram_matches_null_behaviour(self):
        h = Histogram("lat", {})
        assert h.mean() == 0.0
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_hub_value_on_histogram_reports_count(self):
        hub = MetricsHub()
        h = hub.histogram("lat", buckets=(1.0, 2.0))
        assert hub.value("lat") == 0
        h.observe(0.5)
        h.observe(1.5)
        assert hub.value("lat") == 2

    def test_hub_value_on_gauge(self):
        hub = MetricsHub()
        hub.gauge("depth").set(7.0)
        assert hub.value("depth") == 7.0
