"""The performance-observability measurement core (repro.obs.perf).

Uses a synthetic micro scenario (tiny deterministic world, ~100 events)
so the full mode sweep + attribution runs in milliseconds; the real
scenario suite is exercised by benchmarks/test_kernel_baseline.py.
"""

from types import SimpleNamespace

import pytest

from repro.obs.perf import (
    OBS_MODES,
    SCENARIOS,
    ModeRun,
    Scenario,
    ScenarioReport,
    measure_attribution,
    measure_mode,
    measure_scenario,
    peak_rss_kb,
    provenance,
    worlds_digest,
)
from repro.sim.kernel import Environment


def _micro_run(telemetry):
    """A tiny deterministic world shaped like the real World objects."""
    env = Environment()
    telemetry.attach(env)
    markers = telemetry.marker_log()
    stats = SimpleNamespace(issued=0, outcomes={})

    def driver():
        for i in range(40):
            yield env.timeout(1.0)
            stats.issued += 1
            stats.outcomes["ok"] = stats.outcomes.get("ok", 0) + 1
            if i % 10 == 0:
                markers.mark(env.now, "detected", ("heartbeat", 0, i))
                telemetry.tracer.emit("server_start", source="n0", node_id=i)

    env.process(driver(), name="n0.main")
    env.run(until=50.0)
    return [SimpleNamespace(env=env, markers=markers, stats=stats)]


MICRO = Scenario("micro", "synthetic test scenario", cells=1, run=_micro_run)


class TestWorldsDigest:
    def _world(self, marks=((1.0, "detected", "x"),), issued=5, now=50.0,
               processed=100):
        from repro.sim.series import MarkerLog

        markers = MarkerLog()
        for t, label, data in marks:
            markers.mark(t, label, data)
        return SimpleNamespace(
            env=SimpleNamespace(now=now, processed_count=processed),
            markers=markers,
            stats=SimpleNamespace(issued=issued, outcomes={"ok": issued}),
        )

    def test_deterministic(self):
        assert worlds_digest([self._world()]) == worlds_digest([self._world()])

    def test_sensitive_to_markers(self):
        a = worlds_digest([self._world(marks=((1.0, "detected", "x"),))])
        b = worlds_digest([self._world(marks=((1.0, "detected", "y"),))])
        assert a != b

    def test_sensitive_to_clock_and_event_count(self):
        base = worlds_digest([self._world()])
        assert worlds_digest([self._world(now=51.0)]) != base
        assert worlds_digest([self._world(processed=101)]) != base

    def test_sensitive_to_world_order(self):
        w1 = self._world(issued=1)
        w2 = self._world(issued=2)
        assert worlds_digest([w1, w2]) != worlds_digest([w2, w1])

    def test_hex_sha256(self):
        digest = worlds_digest([self._world()])
        assert len(digest) == 64
        int(digest, 16)


class TestMeasureMode:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_mode(MICRO, "loud")

    def test_off_mode_traces_nothing(self):
        run = measure_mode(MICRO, "off")
        assert run.mode == "off"
        assert run.trace_events == 0
        assert run.events_processed > 0
        assert run.events_scheduled >= run.events_processed
        assert run.wall_seconds > 0.0
        assert run.events_per_sec > 0.0

    def test_enabled_modes_trace_identically(self):
        unsub = measure_mode(MICRO, "unsub")
        on = measure_mode(MICRO, "on")
        # 4 marker mirrors + 4 direct emits per run.
        assert unsub.trace_events == on.trace_events == 8
        assert unsub.digest == on.digest

    def test_events_per_sec_guards_zero_wall(self):
        run = ModeRun(mode="off", wall_seconds=0.0, events_processed=10,
                      events_scheduled=10, trace_events=0, digest="d")
        assert run.events_per_sec == 0.0

    def test_to_dict_round_trips_fields(self):
        doc = measure_mode(MICRO, "off").to_dict()
        assert set(doc) == {"mode", "wall_seconds", "events_processed",
                            "events_scheduled", "events_per_sec",
                            "trace_events", "spans_recorded", "digest"}

    def test_spans_mode_records_spans_without_digest_drift(self):
        off = measure_mode(MICRO, "off")
        spans = measure_mode(MICRO, "spans")
        assert spans.spans_recorded == 0  # micro world opens no spans
        assert spans.digest == off.digest


class TestMeasureScenario:
    def test_digests_identical_across_all_modes(self):
        report = measure_scenario(MICRO)
        assert set(report.runs) == set(OBS_MODES)
        # off + unsub + on + spans + the attribution (profiled) run
        assert len(report.digests) == 5
        assert report.digests_equal
        assert report.events_per_sec > 0.0
        assert report.wall_per_cell == report.runs["off"].wall_seconds
        assert report.overhead("off") == pytest.approx(1.0)
        assert report.overhead("unsub") > 0.0
        assert report.overhead("on") > 0.0
        assert report.overhead("spans") > 0.0

    def test_attribution_breakdown(self):
        attribution, digest = measure_attribution(MICRO)
        assert digest == measure_mode(MICRO, "off").digest
        assert attribution["wall_seconds"] > 0.0
        assert attribution["callback_seconds"] > 0.0
        assert attribution["kernel_overhead_seconds"] >= 0.0
        # The micro driver generator lives in this test file -> "other".
        assert "other" in attribution["by_subsystem"]
        assert "Timeout" in attribution["by_kind"]
        assert "n*.main" in attribution["by_type"]

    def test_attribution_optional(self):
        report = measure_scenario(MICRO, modes=("off",), attribution=False)
        assert report.attribution == {}
        assert report.attribution_digest == ""
        assert report.digests == [report.runs["off"].digest]
        assert report.digests_equal

    def test_to_dict_shape(self):
        doc = measure_scenario(MICRO).to_dict()
        assert doc["scenario"] == "micro"
        assert doc["cells"] == 1
        assert doc["digests_equal"] is True
        assert set(doc["runs"]) == set(OBS_MODES)
        assert doc["overhead_unsub"] > 0.0
        assert doc["overhead_on"] > 0.0
        assert doc["overhead_spans"] > 0.0

    def test_divergent_digests_detected(self):
        report = ScenarioReport(scenario="s", description="", cells=1)
        report.runs["off"] = ModeRun("off", 1.0, 10, 10, 0, "aaa")
        report.runs["on"] = ModeRun("on", 1.0, 10, 10, 5, "bbb")
        assert not report.digests_equal


class TestStandardScenarios:
    def test_registry_shape(self):
        assert set(SCENARIOS) == {"steady", "crash", "grid"}
        for name, sc in SCENARIOS.items():
            assert sc.name == name
            assert sc.description
            assert sc.cells >= 1
            assert callable(sc.run)


class TestProvenance:
    def test_fields(self):
        prov = provenance()
        assert set(prov) == {"git_sha", "git_dirty", "host",
                             "host_fingerprint", "machine", "cpu_count",
                             "python", "timestamp"}
        assert len(prov["host_fingerprint"]) == 12
        int(prov["host_fingerprint"], 16)
        assert prov["cpu_count"] >= 1
        assert isinstance(prov["timestamp"], float)

    def test_fingerprint_stable_within_host(self):
        assert provenance()["host_fingerprint"] == \
            provenance()["host_fingerprint"]

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0
