"""Flight recorder: artifact round trip and replay fidelity."""

import json

import pytest

from repro.core.template import TemplateFitter
from repro.obs.attribution import StageAttributor
from repro.obs.recorder import (
    SCHEMA_VERSION,
    FlightRecord,
    read_record,
    write_record,
)

from tests.obs.synth import standard_detected_record


@pytest.fixture()
def record():
    return standard_detected_record()


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self, record):
        clone = FlightRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_json_file_round_trip(self, record, tmp_path):
        path = tmp_path / "flight.json"
        write_record(record, path)
        clone = read_record(path)
        assert clone.to_dict() == record.to_dict()

    def test_artifact_is_plain_json(self, record, tmp_path):
        path = tmp_path / "flight.json"
        write_record(record, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["version"] == "SYNTH"
        assert payload["fault"] == "node_crash"
        assert len(payload["samples"]) == len(record.samples)

    def test_parent_directories_created(self, record, tmp_path):
        path = tmp_path / "a" / "b" / "flight.json"
        write_record(record, path)
        assert path.exists()

    def test_newer_schema_rejected(self, record):
        payload = record.to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            FlightRecord.from_dict(payload)


class TestReplay:
    def test_trace_rebuild_preserves_series_and_timeline(self, record):
        trace = record.to_trace()
        assert list(trace.series.times) == record.samples
        assert trace.t_inject == record.timeline["t_inject"]
        assert trace.t_repair == record.timeline["t_repair"]
        assert trace.t_end == record.timeline["t_end"]
        assert trace.t_detect == record.timeline["t_detect"]

    def test_refit_after_round_trip_is_identical(self, record, tmp_path):
        path = tmp_path / "flight.json"
        write_record(record, path)
        replayed = read_record(path)
        fitter = TemplateFitter()
        original = fitter.fit(record.to_trace())
        refit = fitter.fit(replayed.to_trace())
        assert refit == original

    def test_attribution_after_round_trip_is_identical(self, record, tmp_path):
        path = tmp_path / "flight.json"
        write_record(record, path)
        replayed = read_record(path)
        attributor = StageAttributor()
        a = attributor.attribute(record)
        b = attributor.attribute(replayed)
        assert a.to_dict() == b.to_dict()

    def test_events_survive_round_trip(self, record, tmp_path):
        path = tmp_path / "flight.json"
        write_record(record, path)
        replayed = read_record(path)
        assert replayed.events == record.events
        assert replayed.events_of("detected")
