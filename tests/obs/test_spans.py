"""Causal tracing: recorder semantics, critical paths, blame, export.

The synthetic trees here use explicit timestamps so every attribution
number is checkable by hand; the live end-to-end path (ctx threading
through PRESS) is exercised by tests/integration/test_span_tracing.py.
"""

import io

import pytest

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanRecorder,
    analyze_tree,
    attribute_path,
    blame_report,
    critical_path,
    filter_spans,
    format_blame,
    format_critical_path,
    path_signature,
    phases_from_trace,
    render_waterfall,
    span_event,
    span_from_dict,
    span_from_event,
    span_to_dict,
    spans_digest,
)


def _request_tree(rec, req_id, t0=0.0, latency=1.0, outcome="ok",
                  peer=False):
    """One synthetic request: connect, queue, then serve (or peer fetch)."""
    root = rec.root(req_id, "request", "clients", t=t0)
    conn = rec.start("connect", "network", "clients", root, t=t0)
    rec.finish(conn, t=t0 + 0.1 * latency)
    q = rec.start("mainq", "queue", "n1", root, t=t0 + 0.1 * latency)
    rec.finish(q, t=t0 + 0.2 * latency)
    if peer:
        fetch = rec.start("peer_fetch", "network", "n1", root,
                          t=t0 + 0.2 * latency)
        remote = rec.start("remote_serve", "service", "n2", fetch,
                           t=t0 + 0.3 * latency)
        rec.finish(remote, t=t0 + 0.9 * latency)
        rec.finish(fetch, t=t0 + latency)
    else:
        serve = rec.start("serve", "service", "n1", root,
                          t=t0 + 0.2 * latency)
        rec.finish(serve, t=t0 + latency)
    rec.finish(root, t=t0 + latency, outcome=outcome)
    return root


class TestRecorder:
    def test_root_start_finish_lifecycle(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0, fid=7)
        child = rec.start("serve", "service", "n1", root, t=0.5)
        rec.finish(child, t=1.0, cache="hit")
        rec.finish(root, t=1.5, outcome="ok")
        tree = rec.tree(1)
        assert [s.name for s in tree] == ["request", "serve"]
        assert tree[0].meta == {"fid": 7, "outcome": "ok"}
        assert tree[1].parent_id == tree[0].span_id
        assert tree[1].duration == pytest.approx(0.5)
        assert len(rec) == 2

    def test_event_is_zero_duration(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        ev = rec.event(root, "route", "route", "fe", t=0.3, choice="n1")
        assert ev.t0 == ev.t1 == 0.3
        assert ev.meta == {"choice": "n1"}

    def test_none_ctx_and_none_span_are_tolerated(self):
        rec = SpanRecorder()
        assert rec.start("serve", "service", "n1", None) is None
        assert rec.event(None, "route", "route", "fe") is None
        rec.finish(None)  # must not raise
        rec.annotate(None, k=1)

    def test_disabled_recorder_records_nothing(self):
        rec = SpanRecorder(enabled=False)
        assert rec.root(1, "request", "clients") is None
        assert rec.probe_root("fme_probe", "n1") is None
        assert len(rec) == 0
        assert NULL_SPANS.root(1, "request", "clients") is None

    def test_unknown_category_rejected(self):
        with pytest.raises(AssertionError):
            Span(1, 1, None, "x", "bogus", "n1", 0.0)

    def test_probe_roots_use_negative_request_ids(self):
        rec = SpanRecorder()
        a = rec.probe_root("fme_probe", "n1", t=0.0)
        b = rec.probe_root("fme_probe", "n1", t=1.0)
        assert a.req_id == -1 and b.req_id == -2
        assert set(rec.request_ids) == {-1, -2}

    def test_ring_eviction_and_dropped_counter(self):
        rec = SpanRecorder(max_requests=2)
        roots = {i: rec.root(i, "request", "clients", t=float(i))
                 for i in (1, 2, 3)}
        assert rec.request_ids == [2, 3]
        assert rec.dropped == 1
        # children of an evicted tree are dropped, not resurrected
        assert rec.start("serve", "service", "n1", roots[1]) is None
        assert rec.request_ids == [2, 3]

    def test_clock_binding(self):
        class _Env:
            now = 4.5

        rec = SpanRecorder()
        rec.bind_clock(_Env())
        root = rec.root(1, "request", "clients")
        assert root.t0 == 4.5


class TestSampling:
    def test_decisions_are_pure_in_req_id_and_seed(self):
        a = SpanRecorder(sample=0.5, seed=42)
        b = SpanRecorder(sample=0.5, seed=42)
        ids = range(1, 1001)
        assert [a.sampled(i) for i in ids] == [b.sampled(i) for i in ids]

    def test_seed_changes_the_sampled_set(self):
        a = SpanRecorder(sample=0.5, seed=1)
        b = SpanRecorder(sample=0.5, seed=2)
        ids = range(1, 1001)
        assert [a.sampled(i) for i in ids] != [b.sampled(i) for i in ids]

    def test_rate_extremes(self):
        assert all(SpanRecorder(sample=1.0).sampled(i) for i in range(100))
        assert not any(SpanRecorder(sample=0.0).sampled(i)
                       for i in range(100))

    def test_rate_is_roughly_honored(self):
        rec = SpanRecorder(sample=0.25, seed=7)
        hits = sum(rec.sampled(i) for i in range(1, 4001))
        assert 800 <= hits <= 1200  # 1000 expected

    def test_unsampled_roots_record_nothing(self):
        rec = SpanRecorder(sample=0.0)
        assert rec.root(1, "request", "clients") is None
        assert len(rec) == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(sample=1.5)


class TestCriticalPath:
    def test_serialized_hops_all_on_path(self):
        rec = SpanRecorder()
        _request_tree(rec, 1, t0=0.0, latency=10.0)
        tree = rec.tree(1)
        assert path_signature(critical_path(tree)) == \
            "request>connect>mainq>serve"
        hops = attribute_path(tree)
        assert sum(h["self_time"] for h in hops) == pytest.approx(10.0)
        by_name = {h["name"]: h for h in hops}
        assert by_name["connect"]["self_time"] == pytest.approx(1.0)
        assert by_name["mainq"]["self_time"] == pytest.approx(1.0)
        assert by_name["serve"]["self_time"] == pytest.approx(8.0)
        assert by_name["request"]["self_time"] == pytest.approx(0.0)

    def test_shadowed_parallel_hop_is_excluded(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        slow = rec.start("peer_fetch", "network", "n1", root, t=1.0)
        fast = rec.start("disk", "disk", "n1", root, t=2.0)
        rec.finish(fast, t=4.0)   # entirely inside slow's window
        rec.finish(slow, t=9.0)
        rec.finish(root, t=10.0, outcome="ok")
        path = critical_path(rec.tree(1))
        assert path_signature(path) == "request>peer_fetch"
        hops = attribute_path(rec.tree(1))
        assert sum(h["self_time"] for h in hops) == pytest.approx(10.0)

    def test_open_spans_clamp_to_tree_end(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        rec.start("mainq", "queue", "n1", root, t=1.0)  # never finished
        rec.finish(root, t=5.0, outcome="expired")
        rec_tree = rec.tree(1)
        hops = attribute_path(rec_tree)
        assert sum(h["self_time"] for h in hops) == pytest.approx(5.0)
        record = analyze_tree(1, rec_tree)
        assert record["outcome"] == "expired"
        assert record["latency"] == pytest.approx(5.0)

    def test_analyze_tree_dominant_hop(self):
        rec = SpanRecorder()
        _request_tree(rec, 3, t0=2.0, latency=4.0, peer=True)
        record = analyze_tree(3, rec.tree(3))
        assert record["signature"] == \
            "request>connect>mainq>peer_fetch>remote_serve"
        assert record["dominant"]["name"] == "remote_serve"
        assert record["t0"] == pytest.approx(2.0)
        assert analyze_tree(9, []) is None


class TestBlame:
    def _trees(self):
        rec = SpanRecorder()
        # 20 fast local requests before the fault, 20 slow peer-fetch
        # requests after it; one FME probe that must be excluded.
        for i in range(1, 21):
            _request_tree(rec, i, t0=float(i), latency=0.1)
        for i in range(21, 41):
            _request_tree(rec, i, t0=100.0 + i, latency=5.0, peer=True)
        probe = rec.probe_root("fme_probe", "n1", t=1.0)
        rec.finish(probe, t=2.0)
        return rec

    def test_phase_split_and_grouping(self):
        rec = self._trees()
        phases = [("before", 0.0, 100.0), ("during crash", 100.0, 200.0)]
        report = blame_report(rec.trees(), percentile=50.0, phases=phases)
        assert report["requests"] == 40  # probe excluded
        before, during = report["phases"]
        assert before["label"] == "before"
        assert before["requests"] == 20
        assert during["groups"][0]["signature"] == \
            "request>connect>mainq>peer_fetch>remote_serve"
        assert during["groups"][0]["dominant"] == "remote_serve"
        assert during["groups"][0]["max_latency"] == pytest.approx(5.0)

    def test_p99_keeps_at_least_one_request(self):
        rec = self._trees()
        report = blame_report(rec.trees(), percentile=99.0)
        (phase,) = report["phases"]
        assert phase["tail"] == 1
        assert phase["threshold"] == pytest.approx(5.0)

    def test_format_blame_renders(self):
        rec = self._trees()
        text = format_blame(blame_report(rec.trees(), percentile=50.0))
        assert "tail-latency blame" in text
        assert "peer_fetch" in text

    def test_empty_phase_renders_placeholder(self):
        report = blame_report([], phases=[("before", 0.0, 1.0)])
        assert "no sampled requests" in format_blame(report)


class TestPhases:
    def test_no_faults_is_one_window(self):
        events = [TraceEvent(5.0, EventKind.SERVER_START, "n1", {})]
        assert phases_from_trace(events) == [("all", 0.0, 5.0)]

    def test_inject_and_repair_split(self):
        events = [
            TraceEvent(10.0, EventKind.FAULT_INJECTED, "injector",
                       {"fault": "node_crash"}),
            TraceEvent(40.0, EventKind.FAULT_REPAIRED, "injector",
                       {"fault": "node_crash"}),
            TraceEvent(90.0, EventKind.SERVER_START, "n1", {}),
        ]
        assert phases_from_trace(events) == [
            ("before", 0.0, 10.0),
            ("during node_crash", 10.0, 40.0),
            ("after node_crash", 40.0, 90.0),
        ]

    def test_explicit_end_overrides(self):
        events = [TraceEvent(10.0, EventKind.FAULT_INJECTED, "injector",
                             {"fault": "app_crash"})]
        assert phases_from_trace(events, end=50.0) == [
            ("before", 0.0, 10.0),
            ("during app_crash", 10.0, 50.0),
        ]


class TestExport:
    def _span(self):
        rec = SpanRecorder()
        root = rec.root(5, "request", "clients", t=1.25, fid=3)
        rec.finish(root, t=2.5, outcome="ok")
        return root

    def test_dict_round_trip(self):
        span = self._span()
        clone = span_from_dict(span_to_dict(span))
        assert span_to_dict(clone) == span_to_dict(span)

    def test_open_span_round_trips_null_t1(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        clone = span_from_dict(span_to_dict(root))
        assert clone.t1 is None

    def test_jsonl_round_trip_via_trace_events(self):
        rec = SpanRecorder()
        _request_tree(rec, 1, t0=0.0, latency=1.0)
        buf = io.StringIO()
        write_jsonl((span_event(s) for s in rec.spans()), buf)
        buf.seek(0)
        clones = [span_from_event(ev) for ev in read_jsonl(buf)]
        assert spans_digest(clones) == spans_digest(rec.spans())

    def test_digest_ignores_insertion_order(self):
        rec = SpanRecorder()
        _request_tree(rec, 1, t0=0.0, latency=1.0)
        spans = list(rec.spans())
        assert spans_digest(reversed(spans)) == spans_digest(spans)

    def test_digest_sensitive_to_content(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        base = spans_digest([root])
        rec.annotate(root, outcome="ok")
        assert spans_digest([root]) != base

    def test_filter_spans_by_category_node_and_limit(self):
        rec = SpanRecorder()
        _request_tree(rec, 1, t0=0.0, latency=1.0, peer=True)
        spans = list(rec.spans())
        nets = filter_spans(spans, kinds=["network"])
        assert {s.name for s in nets} == {"connect", "peer_fetch"}
        remote = filter_spans(spans, components=["n2"])
        assert [s.name for s in remote] == ["remote_serve"]
        assert len(filter_spans(spans, limit=2)) == 2


class TestWaterfall:
    def test_renders_rows_and_meta(self):
        rec = SpanRecorder()
        _request_tree(rec, 7, t0=0.0, latency=2.0, peer=True)
        text = render_waterfall(rec.tree(7))
        assert "request 7 on clients" in text
        assert "remote_serve [n2]" in text
        assert "outcome: ok" in text
        assert "#" in text

    def test_open_span_is_flagged(self):
        rec = SpanRecorder()
        root = rec.root(1, "request", "clients", t=0.0)
        rec.start("mainq", "queue", "n1", root, t=0.5)
        rec.finish(root, t=1.0, outcome="expired")
        assert "*open*" in render_waterfall(rec.tree(1))

    def test_empty_tree(self):
        assert render_waterfall([]) == "(empty span tree)"

    def test_format_critical_path(self):
        rec = SpanRecorder()
        _request_tree(rec, 2, t0=0.0, latency=1.0)
        text = format_critical_path(analyze_tree(2, rec.tree(2)))
        assert text.startswith("req 2:")
        assert "serve" in text
