"""ASCII timeline rendering of recorded flights."""

import pytest

from repro.obs.attribution import StageAttributor
from repro.obs.timeline import format_attribution, render_timeline

from tests.obs.synth import standard_detected_record


class TestRenderTimeline:
    def test_chart_has_stage_bands_and_marks(self):
        record = standard_detected_record()
        text = render_timeline(record, bucket=5.0)
        assert "SYNTH / node_crash @ n1" in text
        assert "INJECT" in text
        assert "DETECT" in text
        assert "REPAIR" in text
        # stage letters appear as band labels
        for stage in ("A", "C", "D"):
            assert any(line.rstrip().endswith(stage) or f" {stage} " in line
                       for line in text.splitlines())

    def test_reuses_supplied_report(self):
        record = standard_detected_record()
        report = StageAttributor().attribute(record)
        text = render_timeline(record, report=report)
        assert f"{report.coverage * 100:.1f}%" in text

    def test_width_and_bucket_knobs(self):
        record = standard_detected_record()
        narrow = render_timeline(record, bucket=10.0, width=10)
        assert "###########" not in narrow  # bars capped at width 10
        with pytest.raises(ValueError):
            render_timeline(record, bucket=0.0)

    def test_includes_attribution_table(self):
        text = render_timeline(standard_detected_record())
        assert "lost req-s" in text
        assert "fit cross-check" in text


class TestFormatAttribution:
    def test_table_lists_every_slice(self):
        record = standard_detected_record()
        report = StageAttributor().attribute(record)
        text = format_attribution(report)
        for s in report.slices:
            assert s.cause in text
        assert "attributed" in text

    def test_disagreement_is_flagged(self):
        record = standard_detected_record()
        report = StageAttributor().attribute(record)
        # force a fake disagreement
        from repro.obs.attribution import BoundaryCheck

        report.checks.append(BoundaryCheck("G", 10.0, 0.0, 1.0))
        text = format_attribution(report)
        assert "DISAGREE" in text
        assert "(!)" in text
