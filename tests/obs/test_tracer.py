"""Tracer, marker translation, and the MarkerLog facade equivalence."""

from repro.faults.types import FaultComponent, FaultKind
from repro.obs.events import EventKind, KNOWN_KINDS, marker_event, sanitize
from repro.obs.trace import TracedMarkerLog, Tracer
from repro.sim.kernel import Environment
from repro.sim.series import MarkerLog


class TestTracer:
    def test_emit_and_query(self):
        tr = Tracer()
        tr.emit("server_start", source="n0", time=1.0, node_id=0)
        tr.emit("server_crash", source="n0", time=5.0, node_id=0)
        assert len(tr) == 2
        assert tr.first("server_crash").time == 5.0
        assert [e.kind for e in tr.events_of("server_start")] == ["server_start"]
        assert tr.first("nothing") is None

    def test_disabled_is_inert(self):
        tr = Tracer(enabled=False)
        assert tr.emit("server_start", time=0.0) is None
        assert tr.emit_marker(0.0, "detected", None) is None
        assert len(tr) == 0

    def test_bound_clock_stamps_events(self):
        env = Environment()
        tr = Tracer()
        tr.bind_clock(env)

        def waiter():
            yield env.timeout(3.0)

        env.process(waiter())
        env.run(until=3.0)
        ev = tr.emit("server_start")
        assert ev.time == 3.0

    def test_subscribers_see_events(self):
        tr = Tracer()
        seen = []
        tr.subscribe(seen.append)
        tr.emit("server_start", time=0.0)
        assert [e.kind for e in seen] == ["server_start"]

    def test_data_sanitized_at_emit(self):
        tr = Tracer()
        ev = tr.emit("memb_view", time=0.0, members=(2, 0, 1),
                     kind_enum=FaultKind.NODE_CRASH)
        assert ev.data["members"] == [2, 0, 1]
        assert ev.data["kind_enum"] == "node_crash"

    def test_clear(self):
        tr = Tracer()
        tr.emit("server_start", time=0.0)
        tr.clear()
        assert len(tr) == 0


class TestSanitize:
    def test_primitives_pass_through(self):
        for v in (None, "x", 1, 1.5, True):
            assert sanitize(v) == v

    def test_containers_become_json_shapes(self):
        assert sanitize((1, 2)) == [1, 2]
        assert sanitize({1: (2,)}) == {"1": [2]}
        assert sanitize({3, 1, 2}) == [1, 2, 3]

    def test_fault_component(self):
        comp = FaultComponent(FaultKind.NODE_CRASH, "n1")
        assert sanitize(comp) == {"kind": "node_crash", "target": "n1"}

    def test_fallback_is_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert sanitize(Opaque()) == "<opaque>"


class TestMarkerEvent:
    def test_detected_triple(self):
        ev = marker_event(10.0, "detected", ("heartbeat", 0, 1))
        assert ev.kind == EventKind.DETECTED
        assert ev.source == "0"
        assert ev.data == {"mechanism": "heartbeat", "observer": 0, "target": 1}

    def test_excluded_pair(self):
        ev = marker_event(10.0, "excluded", (0, 1))
        assert ev.data == {"observer": 0, "peer": 1}

    def test_fault_component_payload(self):
        comp = FaultComponent(FaultKind.APP_HANG, "n2")
        ev = marker_event(10.0, "fault_injected", comp)
        assert ev.source == "injector"
        assert ev.data == {"fault": "app_hang", "target": "n2"}

    def test_membership_lists(self):
        ev = marker_event(10.0, "memb_excluded", [3])
        assert ev.source == "membership"
        assert ev.data == {"members": [3]}

    def test_frontend_labels(self):
        ev = marker_event(10.0, "fe_node_down", "n1")
        assert ev.source == "frontend"
        assert ev.data == {"node": "n1"}

    def test_unknown_label_passes_through(self):
        ev = marker_event(10.0, "custom_annotation", {"a": (1,)})
        assert ev.kind == "custom_annotation"
        assert ev.data == {"a": [1]}
        ev2 = marker_event(10.0, "another", 42)
        assert ev2.data == {"value": 42}

    def test_known_kinds_covers_vocabulary(self):
        assert EventKind.QUEUE_SATURATED in KNOWN_KINDS
        assert EventKind.MEMB_VIEW in KNOWN_KINDS


class TestTracedMarkerLogFacade:
    """The facade must be query-for-query identical to a plain MarkerLog."""

    MARKS = [
        (1.0, "fault_injected", FaultComponent(FaultKind.NODE_CRASH, "n1")),
        (2.0, "detected", ("heartbeat", 0, 1)),
        (2.0, "excluded", (0, 1)),
        (3.0, "fe_node_down", "n1"),
        (9.0, "detected", ("mon", "fe0", "n1")),
        (30.0, "fault_repaired", FaultComponent(FaultKind.NODE_CRASH, "n1")),
        (40.0, "reintegrated", 1),
    ]

    def _both(self):
        plain, traced = MarkerLog(), TracedMarkerLog(Tracer())
        for t, label, data in self.MARKS:
            plain.mark(t, label, data)
            traced.mark(t, label, data)
        return plain, traced

    def test_entries_identical(self):
        plain, traced = self._both()
        assert traced.entries == plain.entries

    def test_queries_identical(self):
        plain, traced = self._both()
        for label in ("detected", "excluded", "fault_injected", "missing"):
            assert traced.all(label) == plain.all(label)
            assert traced.first(label) == plain.first(label)
            assert traced.last(label) == plain.last(label)
        assert traced.labels() == plain.labels()

    def test_marks_mirrored_into_tracer(self):
        _, traced = self._both()
        events = traced._tracer.events
        assert len(events) == len(self.MARKS)
        assert [e.kind for e in events] == [label for _, label, _ in self.MARKS]
        assert events[0].data == {"fault": "node_crash", "target": "n1"}

    def test_disabled_tracer_keeps_facade_working(self):
        traced = TracedMarkerLog(Tracer(enabled=False))
        traced.mark(1.0, "detected", ("heartbeat", 0, 1))
        assert traced.first("detected") == 1.0
        assert len(traced._tracer) == 0


class TestRingBuffer:
    """max_events caps in-memory retention without losing subscriber data."""

    def test_unbounded_by_default(self):
        tr = Tracer()
        assert tr.max_events is None
        for i in range(100):
            tr.emit("server_start", node_id=i)
        assert len(tr) == 100
        assert tr.dropped == 0

    def test_cap_drops_oldest(self):
        tr = Tracer(max_events=3)
        for i in range(5):
            tr.emit("server_start", time=float(i), node_id=i)
        assert tr.max_events == 3
        assert len(tr) == 3
        assert [e.data["node_id"] for e in tr.events] == [2, 3, 4]
        assert tr.dropped == 2

    def test_under_cap_drops_nothing(self):
        tr = Tracer(max_events=10)
        for i in range(10):
            tr.emit("server_start", node_id=i)
        assert len(tr) == 10
        assert tr.dropped == 0

    def test_subscribers_see_every_event_beyond_cap(self):
        tr = Tracer(max_events=2)
        seen = []
        tr.subscribe(seen.append)
        for i in range(6):
            tr.emit("server_start", node_id=i)
        assert len(tr) == 2
        assert [e.data["node_id"] for e in seen] == list(range(6))

    def test_drop_counter_mirrors_drops(self):
        from repro.obs.metrics import MetricsHub

        hub = MetricsHub()
        tr = Tracer(max_events=2, drop_counter=hub.counter("trace_events_dropped"))
        for i in range(5):
            tr.emit("server_start", node_id=i)
        assert tr.dropped == 3
        assert hub.value("trace_events_dropped") == 3.0

    def test_nonpositive_cap_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(max_events=0)
        with pytest.raises(ValueError):
            Tracer(max_events=-5)

    def test_queries_work_on_capped_stream(self):
        tr = Tracer(max_events=4)
        for i in range(8):
            tr.emit("server_start" if i % 2 else "server_crash", node_id=i)
        assert [e.data["node_id"] for e in tr.events_of("server_start")] == [5, 7]
        assert tr.first("server_crash").data["node_id"] == 4
        tr.clear()
        assert len(tr) == 0


class TestTelemetryRingBufferWiring:
    def test_trace_max_events_registers_drop_metric(self):
        from repro.obs.telemetry import Telemetry

        tm = Telemetry(trace_max_events=2)
        assert tm.tracer.max_events == 2
        assert tm.metrics.get("trace_events_dropped") is not None
        for i in range(5):
            tm.tracer.emit("server_start", node_id=i)
        assert tm.tracer.dropped == 3
        assert tm.metrics.value("trace_events_dropped") == 3.0

    def test_default_registers_no_drop_metric(self):
        from repro.obs.telemetry import Telemetry

        tm = Telemetry()
        assert tm.tracer.max_events is None
        assert tm.metrics.get("trace_events_dropped") is None

    def test_disabled_bundle_ignores_cap(self):
        from repro.obs.telemetry import Telemetry

        tm = Telemetry(enabled=False, trace_max_events=2)
        assert tm.tracer.emit("server_start") is None
        assert tm.tracer.dropped == 0
        assert tm.metrics.snapshot() == []
