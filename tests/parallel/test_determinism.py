"""Serial ≡ parallel: the executor's headline determinism contract.

A quantification with ``jobs=2`` must produce artifacts byte-identical
to the serial run — same flight-record JSON, same chained SHA-256
digests, same model numbers.  This is the regression gate CI runs; if it
ever fails, something in the fan-out (hash-seed pinning, merge order,
record replay) started leaking scheduling into results.
"""

import hashlib
import json

import pytest

from repro.core.quantify import QuantifyConfig, quantify_version
from repro.faults.types import FaultKind

#: two cheap INDEP kinds keep the whole test under ~15 s
KINDS = (FaultKind.APP_CRASH, FaultKind.APP_HANG)


def canonical(obj) -> bytes:
    """The canonical JSON encoding the digest machinery uses."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def chained_digest(docs) -> str:
    """Chained SHA-256 over canonical JSON docs (order-sensitive)."""
    digest = hashlib.sha256(b"repro-parallel")
    for doc in docs:
        digest.update(hashlib.sha256(canonical(doc)).digest())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def runs():
    config = QuantifyConfig.quick(kinds=KINDS)
    serial = quantify_version("INDEP", config, keep_records=True)
    parallel = quantify_version("INDEP", config, keep_records=True, jobs=2)
    return serial, parallel


class TestSerialParallelEquality:
    def test_flight_record_json_identical(self, runs):
        serial, parallel = runs
        assert set(serial.records) == set(parallel.records)
        for kind in serial.records:
            s = json.dumps(serial.records[kind].to_dict(), sort_keys=True)
            p = json.dumps(parallel.records[kind].to_dict(), sort_keys=True)
            assert s == p, f"record for {kind} differs"

    def test_chained_digests_identical(self, runs):
        serial, parallel = runs
        s = chained_digest([serial.records[k].to_dict() for k in KINDS])
        p = chained_digest([parallel.records[k].to_dict() for k in KINDS])
        assert s == p

    def test_model_numbers_identical(self, runs):
        serial, parallel = runs
        assert serial.availability == parallel.availability
        assert serial.unavailability == parallel.unavailability
        assert serial.normal_tput == parallel.normal_tput
        assert serial.offered_rate == parallel.offered_rate

    def test_templates_identical(self, runs):
        serial, parallel = runs
        for kind in KINDS:
            s = serial.templates[kind].resolved(
                mttr=60.0, operator_response=1800.0, reset_duration=10.0)
            p = parallel.templates[kind].resolved(
                mttr=60.0, operator_response=1800.0, reset_duration=10.0)
            for stage in "ABCDEFG":
                assert s.stage(stage).duration == p.stage(stage).duration
                assert s.stage(stage).throughput == p.stage(stage).throughput

    def test_budgets_identical(self, runs):
        serial, parallel = runs
        s = serial.stage_budget().to_dict()
        p = parallel.stage_budget().to_dict()
        assert canonical(s) == canonical(p)

    def test_traces_identical(self, runs):
        serial, parallel = runs
        for kind in KINDS:
            s, p = serial.traces[kind], parallel.traces[kind]
            assert list(s.series.times) == list(p.series.times)
            assert s.t_inject == p.t_inject
            assert s.t_detect == p.t_detect
            assert s.t_repair == p.t_repair
            assert s.t_reset == p.t_reset
            assert s.t_end == p.t_end
