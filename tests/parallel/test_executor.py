"""Executor plumbing: ordering, crash isolation, retries, stats.

The test workers here are module-level functions (the spawn pool pickles
them by reference) and take the *pass-through* ``config`` slot as a
scratch-directory path — the executor never introspects the config it
ships to workers, so the drills stay simulation-free and fast.
"""

import os
import pickle
from pathlib import Path

import pytest

from repro.faults.campaign import CampaignCell
from repro.obs.metrics import MetricsHub
from repro.parallel import (
    CampaignExecutor,
    CellExecutionError,
    ExecutorConfig,
    pinned_hashseed,
    run_campaign_cells,
    worker_init,
)


def cells_for(n):
    return [CampaignCell(index=i, version="SYNTH", fault="app_crash", seed=0)
            for i in range(n)]


# -- module-level drill workers (picklable into spawned children) ----------
def echo_worker(cell, scratch):
    return {"doc": {"schema": 1, "cell": cell.to_dict(), "record": None},
            "wall": 0.01, "pid": os.getpid()}


def crash_once_worker(cell, scratch):
    """Dies hard (breaking the pool) the first time each cell runs."""
    sentinel = Path(scratch) / f"cell-{cell.index}.attempted"
    if not sentinel.exists():
        sentinel.write_text("")
        os._exit(13)
    return echo_worker(cell, scratch)


def raise_on_odd_worker(cell, scratch):
    if cell.index % 2:
        raise RuntimeError(f"cell {cell.index} refuses")
    return echo_worker(cell, scratch)


class TestExecutorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(jobs=0)
        with pytest.raises(ValueError):
            ExecutorConfig(retries=-1)
        with pytest.raises(ValueError):
            ExecutorConfig(hash_seed="")

    def test_defaults(self):
        cfg = ExecutorConfig()
        assert cfg.jobs == 2 and cfg.retries == 0


class TestCampaignCell:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignCell(index=-1, version="V", fault="app_crash", seed=0)
        with pytest.raises(ValueError):
            CampaignCell(index=0, version="V", fault="app_crash", seed=-1)
        with pytest.raises(ValueError):
            CampaignCell(index=0, version="V", fault="not_a_fault", seed=0)

    def test_pickle_and_dict_roundtrip(self):
        cell = CampaignCell(index=3, version="COOP", fault="node_crash",
                            seed=7, target="n2")
        assert pickle.loads(pickle.dumps(cell)) == cell
        assert CampaignCell.from_dict(cell.to_dict()) == cell
        assert cell.cell_id == "0003:COOP:node_crash:7"


class TestPinnedHashseed:
    def test_sets_and_restores_when_unset(self, monkeypatch):
        monkeypatch.delenv("PYTHONHASHSEED", raising=False)
        with pinned_hashseed("5"):
            assert os.environ["PYTHONHASHSEED"] == "5"
        assert "PYTHONHASHSEED" not in os.environ

    def test_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv("PYTHONHASHSEED", "42")
        with pinned_hashseed("5"):
            assert os.environ["PYTHONHASHSEED"] == "5"
        assert os.environ["PYTHONHASHSEED"] == "42"

    def test_worker_init_requires_pin(self, monkeypatch):
        monkeypatch.delenv("PYTHONHASHSEED", raising=False)
        with pytest.raises(RuntimeError, match="PYTHONHASHSEED"):
            worker_init()
        monkeypatch.setenv("PYTHONHASHSEED", "0")
        worker_init()  # no raise


class TestExecute:
    def test_docs_in_grid_order(self, tmp_path):
        cells = cells_for(4)
        executor = CampaignExecutor(ExecutorConfig(jobs=2),
                                    worker=echo_worker)
        report = executor.execute(cells, str(tmp_path))
        assert [o.cell.index for o in report.outcomes] == [0, 1, 2, 3]
        assert [d["cell"]["index"] for d in report.docs] == [0, 1, 2, 3]
        assert report.stats.cells == 4 and report.stats.failed == 0
        assert report.stats.wall_seconds > 0
        assert report.stats.cell_seconds == pytest.approx(0.04)

    def test_duplicate_indices_rejected(self, tmp_path):
        cells = [CampaignCell(index=0, version="V", fault="app_crash", seed=0),
                 CampaignCell(index=0, version="V", fault="app_hang", seed=0)]
        executor = CampaignExecutor(worker=echo_worker)
        with pytest.raises(ValueError, match="duplicate"):
            executor.execute(cells, str(tmp_path))

    def test_worker_death_is_isolated_and_retried(self, tmp_path):
        cells = cells_for(2)
        executor = CampaignExecutor(ExecutorConfig(jobs=2, retries=2),
                                    worker=crash_once_worker)
        report = executor.execute(cells, str(tmp_path))
        assert report.stats.failed == 0
        assert report.stats.retried >= 1
        assert all(o.ok for o in report.outcomes)
        assert [d["cell"]["index"] for d in report.docs] == [0, 1]

    def test_exhausted_retries_reported_not_raised(self, tmp_path):
        cells = cells_for(3)
        executor = CampaignExecutor(ExecutorConfig(jobs=2, retries=1),
                                    worker=raise_on_odd_worker)
        report = executor.execute(cells, str(tmp_path))
        failed = report.failures
        assert [o.cell.index for o in failed] == [1]
        assert failed[0].attempts == 2
        assert "RuntimeError" in failed[0].error
        # survivors are intact and still in grid order
        assert [d["cell"]["index"] for d in report.docs] == [0, 2]
        assert report.stats.failed == 1

    def test_strict_entry_point_raises(self, tmp_path):
        cells = cells_for(2)
        executor = CampaignExecutor(ExecutorConfig(jobs=2),
                                    worker=raise_on_odd_worker)
        report = executor.execute(cells, str(tmp_path))
        with pytest.raises(CellExecutionError) as exc_info:
            raise CellExecutionError(report)
        assert exc_info.value.report is report
        assert "0001:SYNTH:app_crash:0" in str(exc_info.value)

    def test_progress_lines_emitted(self, tmp_path):
        lines = []
        executor = CampaignExecutor(ExecutorConfig(jobs=2),
                                    progress=lines.append,
                                    worker=echo_worker)
        executor.execute(cells_for(2), str(tmp_path))
        assert len(lines) == 2
        assert all("ok in" in line for line in lines)

    def test_metrics_recorded(self, tmp_path):
        hub = MetricsHub()
        executor = CampaignExecutor(ExecutorConfig(jobs=2),
                                    metrics=hub, worker=echo_worker)
        executor.execute(cells_for(2), str(tmp_path))
        assert hub.value("parallel_cells_total", status="ok") == 2
        assert hub.value("parallel_jobs") == 2
        assert hub.value("parallel_speedup") > 0
        hist = hub.get("parallel_cell_wall_seconds", fault="app_crash")
        assert hist is not None and hist.count == 2


def test_run_campaign_cells_strict(tmp_path):
    # Non-strict returns survivors; strict raises with the report attached.
    cells = cells_for(2)
    docs = run_campaign_cells(cells, str(tmp_path), jobs=2, strict=False)
    # run_campaign_cells always uses the real cell worker; with a scratch
    # path for config every cell fails, which is exactly what the strict
    # contract must surface.
    assert docs == []
    with pytest.raises(CellExecutionError):
        run_campaign_cells(cells, str(tmp_path), jobs=2)
