"""Span trees obey the serial ≡ parallel contract.

With ``REPRO_CELL_SPANS`` set, every cell document carries a canonical
span digest; a jobs=2 fan-out must reproduce the serial digests exactly
— span ids, parentage, sampling, and timings may not depend on process
boundaries or scheduling.
"""

import pytest

from repro.core.quantify import QuantifyConfig, campaign_cells, run_cell
from repro.faults.types import FaultKind
from repro.parallel import run_campaign_cells

#: two cheap INDEP kinds keep the whole test under ~15 s
KINDS = (FaultKind.APP_CRASH, FaultKind.APP_HANG)

pytestmark = pytest.mark.slow


def test_span_digests_identical_serial_vs_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_CELL_SPANS", "1")
    config = QuantifyConfig.quick(kinds=KINDS)
    cells = campaign_cells("INDEP", config)
    serial = [run_cell(cell, config) for cell in cells]
    parallel = run_campaign_cells(cells, config, jobs=2)
    assert [d["cell"]["index"] for d in parallel] == \
        [d["cell"]["index"] for d in serial]
    for s, p in zip(serial, parallel):
        assert s["n_spans"] == p["n_spans"] > 0
        assert s["spans_digest"] == p["spans_digest"]


def test_cell_docs_unchanged_without_opt_in(monkeypatch):
    # Default-off: documents stay byte-compatible with pre-span tooling.
    monkeypatch.delenv("REPRO_CELL_SPANS", raising=False)
    config = QuantifyConfig.quick(kinds=KINDS[:1])
    (cell,) = campaign_cells("INDEP", config)
    doc = run_cell(cell, config)
    assert "spans_digest" not in doc
    assert "n_spans" not in doc
