"""LRU cache and cluster cache directory."""

import pytest

from repro.press.cache import CacheDirectory, LruCache


class TestLru:
    def test_insert_and_hit(self):
        c = LruCache(2)
        assert c.insert(1) is None
        assert c.lookup(1)
        assert not c.lookup(2)

    def test_eviction_order(self):
        c = LruCache(2)
        c.insert(1)
        c.insert(2)
        evicted = c.insert(3)
        assert evicted == 1
        assert 2 in c and 3 in c

    def test_hit_refreshes_recency(self):
        c = LruCache(2)
        c.insert(1)
        c.insert(2)
        c.lookup(1)
        assert c.insert(3) == 2  # 2 became LRU after 1 was touched

    def test_reinsert_refreshes(self):
        c = LruCache(2)
        c.insert(1)
        c.insert(2)
        assert c.insert(1) is None
        assert c.insert(3) == 2

    def test_zero_capacity_caches_nothing(self):
        c = LruCache(0)
        assert c.insert(1) is None
        assert not c.lookup(1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_contents_lru_to_mru(self):
        c = LruCache(3)
        for fid in (1, 2, 3):
            c.insert(fid)
        c.lookup(1)
        assert c.contents() == [2, 3, 1]

    def test_remove_and_clear(self):
        c = LruCache(3)
        c.insert(1)
        c.remove(1)
        assert 1 not in c
        c.insert(2)
        c.clear()
        assert len(c) == 0

    def test_never_exceeds_capacity(self):
        c = LruCache(5)
        for fid in range(100):
            c.insert(fid)
            assert len(c) <= 5


class TestDirectory:
    def test_add_and_holders(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.add(2, 10)
        assert d.holders(10) == {1, 2}
        assert d.holders(99) == set()

    def test_remove(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.remove(1, 10)
        assert d.holders(10) == set()
        d.remove(1, 999)  # unknown: no-op

    def test_drop_node(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.add(1, 11)
        d.add(2, 10)
        d.drop_node(1)
        assert d.holders(10) == {2}
        assert d.holders(11) == set()
        assert d.files_of(1) == []

    def test_replace_node(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.replace_node(1, [20, 21])
        assert d.files_of(1) == [20, 21]
        assert d.holders(10) == set()

    def test_known_nodes(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.add(2, 11)
        assert d.known_nodes() == {1, 2}

    def test_clear(self):
        d = CacheDirectory()
        d.add(1, 10)
        d.clear()
        assert d.holders(10) == set()
