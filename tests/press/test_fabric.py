"""Cluster fabric: connection establishment and the control channel."""

import pytest

from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.press.fabric import ClusterFabric
from repro.press.server import PressServer
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog
from repro.workload.trace import SyntheticTrace, TraceConfig
from tests.press.test_press_servers import FAST


@pytest.fixture
def setup(env):
    rngs = RngRegistry(1)
    net = ClusterNetwork(env)
    fabric = ClusterFabric(env, net)
    trace = SyntheticTrace(TraceConfig(n_files=50, file_size=1000), rngs.stream("t"))
    servers = []
    for i in range(3):
        host = Host(env, f"n{i}", i)
        net.attach(host)
        Disk(env, host, 0, DiskParams(seek_time=0.001, jitter=0.0))
        Disk(env, host, 1, DiskParams(seek_time=0.001, jitter=0.0))
        srv = PressServer(host, i, FAST, trace, fabric, MarkerLog())
        srv.start()
        servers.append(srv)
    return net, fabric, servers


class TestRegistry:
    def test_servers_registered(self, setup):
        _, fabric, servers = setup
        assert sorted(fabric.node_ids()) == [0, 1, 2]
        assert fabric.server(1) is servers[1]
        assert fabric.server(99) is None


class TestOpenConnection:
    def test_successful_connect_adds_link_on_both(self, env, setup):
        _, fabric, servers = setup
        conn = fabric.open_connection(servers[0], 1)
        assert conn is not None
        assert 0 in servers[1].links  # acceptor adopted it
        env.run(until=1.0)

    def test_connect_to_dead_app_fails(self, env, setup):
        _, fabric, servers = setup
        servers[1].inject_crash()
        assert fabric.open_connection(servers[0], 1) is None

    def test_connect_to_unknown_fails(self, setup):
        _, fabric, servers = setup
        assert fabric.open_connection(servers[0], 42) is None

    def test_connect_over_dead_link_fails(self, setup):
        net, fabric, servers = setup
        net.link(servers[1].host).up = False
        assert fabric.open_connection(servers[0], 1) is None

    def test_connect_to_frozen_host_fails(self, setup):
        _, fabric, servers = setup
        servers[1].host.freeze()
        assert fabric.open_connection(servers[0], 1) is None


class TestControlChannel:
    def test_broadcast_reaches_all_alive(self, env, setup):
        _, fabric, servers = setup
        fabric.control_broadcast(servers[0], "node_dead", 7)
        env.run(until=0.1)
        # control loop consumed them; verify via a fresh broadcast counting
        # raw deliveries instead:
        before = [s.ctl_q.level for s in servers]
        assert all(level == 0 for level in before)  # drained by control loop

    def test_broadcast_skips_dead_servers(self, env, setup):
        _, fabric, servers = setup
        servers[2].inject_crash()
        fabric.control_broadcast(servers[0], "rejoin")
        env.run(until=0.1)  # must not raise / leak into a dead inbox

    def _freeze_control_plane(self, env, server):
        """Let startup traffic drain, then stop the receiver's control
        loop so later deliveries stay observable in the inbox."""
        env.run(until=env.now + 0.05)
        for proc in list(server.group.processes):
            proc.kill()
        return server.ctl_q.level

    def test_control_send_respects_network(self, env, setup):
        net, fabric, servers = setup
        base = self._freeze_control_plane(env, servers[1])
        net.link(servers[1].host).up = False
        fabric.control_send(servers[0], 1, "hb")
        env.run(until=env.now + 0.1)
        assert servers[1].ctl_q.level == base  # dropped on the dead link

    def test_control_send_delivers(self, env, setup):
        _, fabric, servers = setup
        base = self._freeze_control_plane(env, servers[1])
        fabric.control_send(servers[0], 1, "hb")
        env.run(until=env.now + 0.1)
        assert servers[1].ctl_q.level == base + 1
