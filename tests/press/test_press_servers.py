"""PRESS cooperative server and INDEP variant: behavioural unit tests.

These use small purpose-built worlds (not the full experiment profiles)
so individual mechanisms are observable quickly.
"""

from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.net.network import ClusterNetwork
from repro.press.config import PressConfig
from repro.press.fabric import ClusterFabric
from repro.press.indep import IndepServer
from repro.press.server import PressServer, bootstrap_cluster
from repro.sim.rng import RngRegistry
from repro.sim.series import MarkerLog
from repro.workload.client import Request
from repro.workload.trace import SyntheticTrace, TraceConfig

FAST = PressConfig(
    cache_files=20,
    cpu_parse=1e-4,
    cpu_serve=1e-4,
    cpu_forward=1e-4,
    cpu_remote_serve=1e-4,
    cpu_response=1e-4,
    cpu_disk_done=1e-4,
    cpu_control=1e-5,
    send_queue_capacity=16,
    disk_queue_capacity=8,
    main_queue_capacity=32,
    conn_window=8,
    startup_grace=1.0,
)


def build_cluster(env, n=3, config=FAST, n_files=100):
    rngs = RngRegistry(7)
    markers = MarkerLog()
    net = ClusterNetwork(env)
    fabric = ClusterFabric(env, net)
    trace = SyntheticTrace(TraceConfig(n_files=n_files, file_size=1000), rngs.stream("t"))
    servers = []
    for i in range(n):
        host = Host(env, f"n{i}", i)
        net.attach(host)
        Disk(env, host, 0, DiskParams(seek_time=0.002, jitter=0.0))
        Disk(env, host, 1, DiskParams(seek_time=0.002, jitter=0.0))
        srv = PressServer(host, i, config, trace, fabric, markers)
        srv.start()
        servers.append(srv)
    bootstrap_cluster(servers)
    return servers, net, fabric, markers, trace


def submit(env, server, fid):
    req = Request(env, fid, 1000)
    assert server.try_accept(req)
    return req


class TestServing:
    def test_local_miss_served_from_disk_and_cached(self, env):
        servers, *_ = build_cluster(env)
        req = submit(env, servers[0], 5)
        env.run(until=1.0)
        assert req.response.triggered
        assert 5 in servers[0].cache

    def test_cache_broadcast_updates_peer_directories(self, env):
        servers, *_ = build_cluster(env)
        submit(env, servers[0], 5)
        env.run(until=1.0)
        assert servers[1].directory.holders(5) == {0}
        assert servers[2].directory.holders(5) == {0}

    def test_second_request_forwarded_to_holder(self, env):
        servers, *_ = build_cluster(env)
        submit(env, servers[0], 5)
        env.run(until=1.0)
        served_before = servers[0].requests_served
        req = submit(env, servers[1], 5)
        env.run(until=2.0)
        assert req.response.triggered
        assert servers[1].requests_served == 1  # initial node responds
        # service node 0 did not fetch from disk again
        assert sum(d.ops_served for d in servers[0].host.disks) == 1

    def test_load_piggybacked(self, env):
        servers, *_ = build_cluster(env)
        submit(env, servers[0], 5)
        env.run(until=1.0)
        submit(env, servers[1], 5)
        env.run(until=2.0)
        assert 1 in servers[0].loads  # node 0 learned node 1's load

    def test_accept_backlog_limit(self, env):
        servers, *_ = build_cluster(env, config=FAST.with_(accept_backlog=2))
        s = servers[0]
        reqs = [Request(env, i, 1000) for i in range(3)]
        assert s.try_accept(reqs[0])
        assert s.try_accept(reqs[1])
        assert not s.try_accept(reqs[2])

    def test_not_listening_when_down(self, env):
        servers, *_ = build_cluster(env)
        servers[0].inject_crash()
        assert not servers[0].listening
        assert not servers[0].try_accept(Request(env, 1, 1000))

    def test_http_probe_answered_when_healthy(self, env):
        servers, *_ = build_cluster(env)
        ev = servers[0].http_probe()
        env.run(until=0.5)
        assert ev.triggered

    def test_http_probe_unanswered_when_hung(self, env):
        servers, *_ = build_cluster(env)
        servers[0].inject_hang()
        ev = servers[0].http_probe()
        env.run(until=5.0)
        assert not ev.triggered

    def test_expired_request_dropped_at_parse(self, env):
        servers, *_ = build_cluster(env)
        req = Request(env, 5, 1000)
        req.expired = True
        servers[0].try_accept(req)
        env.run(until=1.0)
        assert not req.response.triggered
        assert servers[0].client_pending == 0

    def test_miss_coalescing(self, env):
        servers, *_ = build_cluster(env)
        reqs = [submit(env, servers[0], 7) for _ in range(5)]
        env.run(until=1.0)
        assert all(r.response.triggered for r in reqs)
        assert sum(d.ops_served for d in servers[0].host.disks) == 1


class TestReconfiguration:
    def test_app_crash_detected_via_connection_reset(self, env, ):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        env.run(until=4.0)
        assert sorted(servers[0].coop) == [0, 2]
        assert sorted(servers[2].coop) == [0, 2]
        reasons = {d[0] for _, d in markers.all("detected")}
        assert "conn_reset" in reasons

    def test_node_crash_detected_via_heartbeats(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        servers[1].host.crash()
        env.run(until=25.0)
        assert sorted(servers[0].coop) == [0, 2]
        reasons = {d[0] for _, d in markers.all("detected")}
        assert "heartbeat" in reasons

    def test_rejoin_after_app_restart(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        env.run(until=5.0)
        servers[1].repair_crash()
        env.run(until=20.0)
        for s in servers:
            assert sorted(s.coop) == [0, 1, 2]

    def test_rejoin_after_node_reboot(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        servers[1].host.crash()
        env.run(until=25.0)
        servers[1].host.boot()
        env.run(until=45.0)
        for s in servers:
            assert sorted(s.coop) == [0, 1, 2]

    def test_frozen_node_splinters_no_reintegration(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        servers[1].host.freeze()
        env.run(until=25.0)
        assert sorted(servers[0].coop) == [0, 2]
        servers[1].host.unfreeze()
        env.run(until=80.0)
        # base PRESS never re-admits a node that did not restart
        assert sorted(servers[0].coop) == [0, 2]
        assert sorted(servers[1].coop) == [1]

    def test_excluded_node_directory_dropped(self, env):
        servers, *_ = build_cluster(env)
        submit(env, servers[1], 5)
        env.run(until=2.0)
        assert servers[0].directory.holders(5) == {1}
        servers[1].inject_crash()
        env.run(until=5.0)
        assert servers[0].directory.holders(5) == set()

    def test_stale_node_dead_announcement_ignored(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        # n1 is excluded; its later announcements must not be honored
        servers[1].inject_crash()
        env.run(until=4.0)
        from repro.net.message import Message
        servers[0].ctl_q.force_put(Message("node_dead", 1, 0, 2))
        env.run(until=6.0)
        assert 2 in servers[0].coop


class TestIndep:
    def build(self, env, n=2):
        rngs = RngRegistry(7)
        trace = SyntheticTrace(TraceConfig(n_files=100, file_size=1000), rngs.stream("t"))
        servers = []
        for i in range(n):
            host = Host(env, f"n{i}", i)
            Disk(env, host, 0, DiskParams(seek_time=0.002, jitter=0.0))
            Disk(env, host, 1, DiskParams(seek_time=0.002, jitter=0.0))
            srv = IndepServer(host, i, FAST, trace)
            srv.start()
            servers.append(srv)
        return servers

    def test_serves_locally(self, env):
        servers = self.build(env)
        req = submit(env, servers[0], 3)
        env.run(until=1.0)
        assert req.response.triggered
        assert 3 in servers[0].cache

    def test_no_cross_node_effects(self, env):
        servers = self.build(env)
        submit(env, servers[0], 3)
        env.run(until=1.0)
        assert 3 not in servers[1].cache
        assert sum(d.ops_served for d in servers[1].host.disks) == 0

    def test_crash_restart_resets_cache(self, env):
        servers = self.build(env)
        submit(env, servers[0], 3)
        env.run(until=1.0)
        servers[0].inject_crash()
        servers[0].repair_crash()
        assert 3 not in servers[0].cache

    def test_miss_coalescing(self, env):
        servers = self.build(env)
        reqs = [submit(env, servers[0], 9) for _ in range(4)]
        env.run(until=1.0)
        assert all(r.response.triggered for r in reqs)
        assert sum(d.ops_served for d in servers[0].host.disks) == 1

    def test_probe(self, env):
        servers = self.build(env)
        ev = servers[0].http_probe()
        env.run(until=0.5)
        assert ev.triggered
