"""The base rejoin protocol (Section 3) in detail."""

from repro.net.message import Message
from tests.press.test_press_servers import FAST, build_cluster, submit


class TestRejoin:
    def test_lowest_id_member_answers(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        env.run(until=4.0)
        servers[1].repair_crash()
        env.run(until=8.0)
        # node 0 (lowest id of the remaining cluster) answered with the
        # configuration; node 1 is wired to everyone again
        assert sorted(servers[1].coop) == [0, 1, 2]
        assert markers.first("rejoined") is not None

    def test_rejoiner_receives_cache_state(self, env):
        servers, *_ = build_cluster(env)
        submit(env, servers[0], 5)
        submit(env, servers[2], 9)
        env.run(until=2.0)
        servers[1].inject_crash()
        env.run(until=4.0)
        servers[1].repair_crash()
        env.run(until=10.0)
        # cache_sync repopulated the rejoiner's directory
        assert servers[1].directory.holders(5) == {0}
        assert servers[1].directory.holders(9) == {2}

    def test_rejoin_retries_until_config_arrives(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        net.switch.up = False  # first rejoin broadcast will be lost
        env.run(until=4.0)
        servers[1].repair_crash()
        env.run(until=10.0)
        assert sorted(servers[1].coop) == [1]  # still alone
        net.switch.up = True
        env.run(until=10.0 + FAST.rejoin_retry + 5.0)
        assert sorted(servers[1].coop) == [0, 1, 2]

    def test_staggered_restarts_reform(self, env):
        """Two nodes crash and restart at different times; each rejoin is
        sequenced through the surviving lowest-id member.  (A *simultaneous*
        full-cluster restart has no surviving member to sequence it — that
        case is the operator's bootstrap, covered by World.operator_reset.)"""
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        servers[2].inject_crash()
        env.run(until=4.0)
        servers[1].repair_crash()
        env.run(until=12.0)
        assert sorted(servers[1].coop) == [0, 1]
        servers[2].repair_crash()
        env.run(until=25.0)
        for srv in servers:
            assert sorted(srv.coop) == [0, 1, 2]

    def test_splintered_node_does_not_rejoin_without_restart(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        servers[1].host.freeze()
        env.run(until=25.0)
        servers[1].host.unfreeze()
        env.run(until=25.0 + 3 * FAST.rejoin_retry)
        # never restarted => never broadcast => stays alone (the paper's
        # fault-model violation)
        assert sorted(servers[1].coop) == [1]

    def test_config_ignored_once_joined(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        # a stray config message must not re-wire an already-joined node
        links_before = set(servers[1].links)
        servers[1].ctl_q.force_put(
            Message("config", 0, 1, {"members": [0]}))
        env.run(until=3.0)
        assert set(servers[1].links) == links_before

    def test_reintegration_marker_on_peer_side(self, env):
        servers, net, fabric, markers, _ = build_cluster(env)
        env.run(until=2.0)
        servers[1].inject_crash()
        env.run(until=4.0)
        servers[1].repair_crash()
        env.run(until=10.0)
        reintegrated = [d for _, d in markers.all("reintegrated")]
        assert 1 in reintegrated
