"""PRESS dispatch policies: queue monitoring dispositions and warm-up mode."""

from repro.net.message import Message
from repro.press.server import PeerLink
from tests.press.test_press_servers import FAST, build_cluster, submit

QMON = FAST.with_(queue_monitoring=True, qmon_reroute_threshold=4,
                  qmon_fail_requests=8, qmon_fail_total=12,
                  qmon_probe_interval=4)


def link_to(server, peer_id) -> PeerLink:
    return server.links[peer_id]


def req_msg(server, peer):
    return Message("fwd_req", server.node_id, peer, {"fid": 1, "reqid": 1, "load": 0},
                   size=256)


def ctl_msg(server, peer):
    return Message("cache_sync", server.node_id, peer, {"fids": [], "load": 0})


class TestQmonDispositions:
    def test_below_thresholds_sends(self, env):
        servers, *_ = build_cluster(env, config=QMON)
        s = servers[0]
        s._warm_mode = False
        assert s._dispatch_to_peer(link_to(s, 1), req_msg(s, 1), True) == "sent"
        assert link_to(s, 1).pending_requests == 1

    def test_reroute_above_first_threshold(self, env):
        servers, *_ = build_cluster(env, config=QMON)
        s = servers[0]
        s._warm_mode = False
        link = link_to(s, 1)
        link.pending_requests = QMON.qmon_reroute_threshold
        dispositions = [s._dispatch_to_peer(link, req_msg(s, 1), True)
                        for _ in range(QMON.qmon_probe_interval)]
        # most are rerouted, every Nth probes the overloaded queue
        assert dispositions.count("reroute") == QMON.qmon_probe_interval - 1
        assert dispositions.count("sent") == 1

    def test_fail_threshold_excludes_peer(self, env):
        servers, *_ = build_cluster(env, config=QMON)
        s = servers[0]
        s._warm_mode = False
        link = link_to(s, 1)
        link.pending_requests = QMON.qmon_fail_requests
        assert s._dispatch_to_peer(link, req_msg(s, 1), True) == "failed"
        assert 1 not in s.coop

    def test_total_backlog_threshold(self, env):
        servers, *_ = build_cluster(env, config=QMON)
        s = servers[0]
        s._warm_mode = False
        link = link_to(s, 1)
        for _ in range(QMON.qmon_fail_total):
            link.send_q.force_put("x")
        assert s._dispatch_to_peer(link, ctl_msg(s, 1), False) == "failed"

    def test_control_messages_not_rerouted_early(self, env):
        servers, *_ = build_cluster(env, config=QMON)
        s = servers[0]
        s._warm_mode = False
        link = link_to(s, 1)
        link.pending_requests = QMON.qmon_reroute_threshold  # below fail
        assert s._dispatch_to_peer(link, ctl_msg(s, 1), False) == "sent"


class TestWarmMode:
    def test_starts_warm_and_exits_when_quiet(self, env):
        servers, *_ = build_cluster(env)
        s = servers[0]
        assert s._warm_mode
        env.run(until=FAST.startup_grace + 10.0)
        assert not s._warm_mode

    def test_warm_mode_sheds_instead_of_blocking(self, env):
        servers, *_ = build_cluster(env)
        s = servers[0]
        link = link_to(s, 1)
        for _ in range(FAST.send_queue_capacity):
            link.send_q.force_put("x")
        assert s._dispatch_to_peer(link, req_msg(s, 1), True) == "reroute"

    def test_after_warm_mode_blocking_returns(self, env):
        servers, *_ = build_cluster(env)
        s = servers[0]
        env.run(until=FAST.startup_grace + 10.0)
        link = link_to(s, 1)
        assert s._dispatch_to_peer(link, req_msg(s, 1), True) == "blockingly"

    def test_exclusion_reenters_warm_mode(self, env):
        servers, *_ = build_cluster(env)
        s = servers[0]
        env.run(until=FAST.startup_grace + 10.0)
        assert not s._warm_mode
        s._exclude(1, "test", announce=False)
        assert s._warm_mode

    def test_heartbeat_exclusions_suppressed_while_warm(self, env):
        servers, *_ = build_cluster(env)
        s = servers[0]
        s._hb_seen[s._ring_neighbor(-1)] = -100.0  # ancient
        s._heartbeat_duty(env.now)
        assert len(s.coop) == 3  # nobody excluded during warm-up


class TestOneCopyDiscipline:
    def test_local_fetch_of_held_file_not_cached(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        s0, s1 = servers[0], servers[1]
        # n1 caches fid 7 and everyone knows.
        submit(env, s1, 7)
        env.run(until=3.0)
        assert s0.directory.holders(7) == {1}
        # Force a local fetch on n0 for the same file (no remote waiter).
        from repro.press.server import DiskFetch

        def force_local():
            yield from s0._to_disk(DiskFetch(7, request=None, origin=None))

        env.process(force_local(), owner=s0.group)
        env.run(until=4.0)
        assert 7 not in s0.cache  # served, not duplicated

    def test_designated_holder_always_caches(self, env):
        servers, *_ = build_cluster(env)
        env.run(until=2.0)
        s0 = servers[0]
        s0.directory.add(2, 9)  # stale: n2 supposedly holds fid 9
        from repro.press.server import DiskFetch

        def forwarded():
            yield from s0._to_disk(DiskFetch(9, origin=1, reqid=77))

        env.process(forwarded(), owner=s0.group)
        env.run(until=3.0)
        assert 9 in s0.cache  # peers chose us: we must cache
