"""Property tests for composite conditions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.conditions import AllOf, AnyOf
from repro.sim.kernel import Environment

delays = st.lists(st.floats(min_value=0.01, max_value=100.0),
                  min_size=1, max_size=12)


@settings(max_examples=60, deadline=None)
@given(delays=delays)
def test_anyof_fires_at_the_minimum(delays):
    env = Environment()
    events = [env.timeout(d) for d in delays]
    cond = AnyOf(env, events)
    fired_at = []
    cond.add_callback(lambda e: fired_at.append(env.now))
    env.run()
    assert fired_at == [min(delays)]


@settings(max_examples=60, deadline=None)
@given(delays=delays)
def test_allof_fires_at_the_maximum(delays):
    env = Environment()
    events = [env.timeout(d) for d in delays]
    cond = AllOf(env, events)
    fired_at = []
    cond.add_callback(lambda e: fired_at.append(env.now))
    env.run()
    assert fired_at == [max(delays)]
    assert len(cond.value) == len(delays)


@settings(max_examples=40, deadline=None)
@given(delays=delays, cut=st.integers(min_value=0, max_value=11))
def test_anyof_value_contains_only_fired_events(delays, cut):
    env = Environment()
    events = [env.timeout(d) for d in delays]
    cond = AnyOf(env, events)
    env.run(until=min(delays))
    assert cond.triggered
    fastest = min(delays)
    for ev, value in cond.value.items():
        assert ev.delay == fastest


@settings(max_examples=40, deadline=None)
@given(delays=delays)
def test_nested_conditions(delays):
    env = Environment()
    half = max(len(delays) // 2, 1)
    inner_a = AllOf(env, [env.timeout(d) for d in delays[:half]])
    inner_b = AllOf(env, [env.timeout(d) for d in delays[half:]] or
                    [env.timeout(0.01)])
    outer = AnyOf(env, [inner_a, inner_b])
    fired = []
    outer.add_callback(lambda e: fired.append(env.now))
    env.run()
    expect = min(max(delays[:half]),
                 max(delays[half:]) if delays[half:] else 0.01)
    assert fired == [expect]
