"""AnyOf / AllOf composite events."""

import pytest

from repro.sim.conditions import AllOf, AnyOf
from repro.sim.kernel import Environment
from repro.sim.store import Store


class TestAnyOf:
    def test_first_event_wins(self, env):
        results = []

        def body():
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(5.0, value="slow")
            cond = yield AnyOf(env, [fast, slow])
            results.append((env.now, dict(cond)))

        env.process(body())
        env.run()
        assert results[0][0] == 1.0
        assert list(results[0][1].values()) == ["fast"]

    def test_first_property(self, env):
        fast = env.timeout(1.0, value="f")
        slow = env.timeout(2.0)
        cond = AnyOf(env, [fast, slow])
        env.run()
        assert cond.first is fast

    def test_get_with_timeout_pattern(self, env):
        store = Store(env)
        outcome = []

        def body():
            get_ev = store.get()
            deadline = env.timeout(2.0)
            yield AnyOf(env, [get_ev, deadline])
            if get_ev.triggered:
                outcome.append(("got", get_ev.value))
            else:
                get_ev.cancel()
                outcome.append(("timeout", env.now))

        env.process(body())
        env.run()
        assert outcome == [("timeout", 2.0)]

    def test_empty_condition_fires_immediately(self, env):
        cond = AnyOf(env, [])
        assert cond.triggered

    def test_already_processed_subevent(self, env):
        ev = env.timeout(1.0, value="v")
        env.run()
        cond = AnyOf(env, [ev])
        assert cond.triggered

    def test_failure_propagates(self, env):
        class Boom(Exception):
            pass

        caught = []

        def body():
            bad = env.event()
            bad.fail(Boom(), delay=1.0)
            try:
                yield AnyOf(env, [bad, env.timeout(5.0)])
            except Boom:
                caught.append(env.now)

        env.process(body())
        env.run()
        assert caught == [1.0]

    def test_cross_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AnyOf(env, [env.timeout(1), other.timeout(1)])


class TestAllOf:
    def test_waits_for_all(self, env):
        times = []

        def body():
            cond = yield AllOf(env, [env.timeout(1.0, "a"), env.timeout(3.0, "b")])
            times.append((env.now, sorted(cond.values())))

        env.process(body())
        env.run()
        assert times == [(3.0, ["a", "b"])]

    def test_values_collected(self, env):
        evs = [env.timeout(i, value=i) for i in (1, 2, 3)]
        cond = AllOf(env, evs)
        env.run()
        assert sorted(cond.value.values()) == [1, 2, 3]

    def test_late_failure_after_trigger_is_defused(self, env):
        ok = env.timeout(1.0)
        cond = AnyOf(env, [ok, env.event()])
        bad = cond.events[1]
        env.run()
        assert cond.triggered
        bad.fail(RuntimeError("late"))
        env.run()  # must not raise: condition consumed it
