"""Kernel scheduling semantics."""

import pytest

from repro.sim.kernel import NORMAL, URGENT, Environment, SimulationError


class TestEvent:
    def test_starts_untriggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_succeed_then_value(self, env):
        ev = env.event().succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callback_after_processing_runs_immediately(self, env):
        ev = env.event().succeed("v")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_unhandled_failure_raises_at_step(self, env):
        class Boom(Exception):
            pass

        env.event().fail(Boom())
        with pytest.raises(Boom):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(RuntimeError("handled"))
        ev._defused = True
        env.run()  # must not raise


class TestClock:
    def test_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_run_until_advances_even_without_events(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=4.0)

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_events_beyond_until_stay_queued(self, env):
        seen = []
        t = env.timeout(10.0)
        t.add_callback(lambda e: seen.append(env.now))
        env.run(until=5.0)
        assert seen == []
        env.run(until=15.0)
        assert seen == [10.0]


class TestOrdering:
    def test_fifo_at_same_time(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_urgent_precedes_normal(self, env):
        order = []
        normal = env.event()
        normal.add_callback(lambda e: order.append("normal"))
        normal.succeed(priority=NORMAL)
        urgent = env.event()
        urgent.add_callback(lambda e: order.append("urgent"))
        urgent.succeed(priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_time_order_dominates_priority(self, env):
        order = []
        late = env.event()
        late.add_callback(lambda e: order.append("late"))
        late.succeed(delay=2.0, priority=URGENT)
        early = env.event()
        early.add_callback(lambda e: order.append("early"))
        early.succeed(delay=1.0, priority=NORMAL)
        env.run()
        assert order == ["early", "late"]

    def test_deterministic_across_runs(self):
        def trace():
            env = Environment()
            log = []

            def proc(name, delay):
                while env.now < 5:
                    yield env.timeout(delay)
                    log.append((env.now, name))

            env.process(proc("a", 0.5))
            env.process(proc("b", 0.5))
            env.process(proc("c", 0.7))
            env.run(until=5)
            return log

        assert trace() == trace()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_double_schedule_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            env.schedule(ev)
