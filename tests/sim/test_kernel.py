"""Kernel scheduling semantics."""

import pytest

from repro.sim.kernel import NORMAL, URGENT, Environment, SimulationError


class TestEvent:
    def test_starts_untriggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_succeed_then_value(self, env):
        ev = env.event().succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callback_after_processing_runs_immediately(self, env):
        ev = env.event().succeed("v")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_unhandled_failure_raises_at_step(self, env):
        class Boom(Exception):
            pass

        env.event().fail(Boom())
        with pytest.raises(Boom):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(RuntimeError("handled"))
        ev._defused = True
        env.run()  # must not raise


class TestClock:
    def test_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_run_until_advances_even_without_events(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=4.0)

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_events_beyond_until_stay_queued(self, env):
        seen = []
        t = env.timeout(10.0)
        t.add_callback(lambda e: seen.append(env.now))
        env.run(until=5.0)
        assert seen == []
        env.run(until=15.0)
        assert seen == [10.0]


class TestOrdering:
    def test_fifo_at_same_time(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_urgent_precedes_normal(self, env):
        order = []
        normal = env.event()
        normal.add_callback(lambda e: order.append("normal"))
        normal.succeed(priority=NORMAL)
        urgent = env.event()
        urgent.add_callback(lambda e: order.append("urgent"))
        urgent.succeed(priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_time_order_dominates_priority(self, env):
        order = []
        late = env.event()
        late.add_callback(lambda e: order.append("late"))
        late.succeed(delay=2.0, priority=URGENT)
        early = env.event()
        early.add_callback(lambda e: order.append("early"))
        early.succeed(delay=1.0, priority=NORMAL)
        env.run()
        assert order == ["early", "late"]

    def test_deterministic_across_runs(self):
        def trace():
            env = Environment()
            log = []

            def proc(name, delay):
                while env.now < 5:
                    yield env.timeout(delay)
                    log.append((env.now, name))

            env.process(proc("a", 0.5))
            env.process(proc("b", 0.5))
            env.process(proc("c", 0.7))
            env.run(until=5)
            return log

        assert trace() == trace()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_double_schedule_rejected(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            env.schedule(ev)


class TestAddCallbackSyncPath:
    """add_callback on an already-processed event runs the callback
    synchronously instead of queuing it."""

    def test_sync_callback_sees_failed_event(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        ev._defused = True
        env.run()
        seen = []
        ev.add_callback(seen.append)
        assert seen == [ev] and not ev.ok

    def test_sync_callback_exception_propagates_to_caller(self, env):
        ev = env.event().succeed()
        env.run()

        def bad(event):
            raise ValueError("from callback")

        with pytest.raises(ValueError, match="from callback"):
            ev.add_callback(bad)

    def test_sync_callback_not_queued_for_later_steps(self, env):
        ev = env.event().succeed("v")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]
        env.timeout(1.0)
        env.run()  # further stepping must not re-run the callback
        assert seen == ["v"]

    def test_pre_processing_callback_still_deferred(self, env):
        seen = []
        ev = env.event()
        ev.add_callback(lambda e: seen.append(env.now))
        ev.succeed(delay=2.0)
        assert seen == []  # not yet: the event is queued, not processed
        env.run()
        assert seen == [2.0]


class TestTiebreakPerturbation:
    """Seeded randomized tie-break among same-(time, priority) events:
    the racecheck sanitizer's scheduling knob."""

    def _same_instant_order(self, tiebreak_seed, n=10):
        env = Environment(tiebreak_seed=tiebreak_seed)
        order = []
        for i in range(n):
            env.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        env.run()
        return order

    def test_seed_stored_and_default_none(self):
        assert Environment().tiebreak_seed is None
        assert Environment(tiebreak_seed=7).tiebreak_seed == 7

    def test_heap_entries_gain_salt_only_when_seeded(self):
        plain = Environment()
        plain.timeout(1.0)
        assert len(plain._queue[0]) == 4
        salted = Environment(tiebreak_seed=1)
        salted.timeout(1.0)
        assert len(salted._queue[0]) == 5

    def test_unseeded_keeps_fifo(self):
        assert self._same_instant_order(None) == list(range(10))

    def test_same_seed_is_deterministic(self):
        for seed in (1, 2, 99):
            assert (self._same_instant_order(seed)
                    == self._same_instant_order(seed))

    def test_salt_permutes_same_instant_events(self):
        fifo = self._same_instant_order(None)
        permuted = [s for s in range(1, 8)
                    if self._same_instant_order(s) != fifo]
        assert permuted, "no seed in 1..7 permuted a 10-way tie"

    def test_every_event_still_fires_exactly_once(self):
        for seed in (None, 1, 2):
            assert sorted(self._same_instant_order(seed)) == list(range(10))

    def test_priority_still_dominates_salt(self):
        for seed in (1, 2, 3, 4, 5):
            env = Environment(tiebreak_seed=seed)
            order = []
            for i in range(4):
                ev = env.event()
                ev.add_callback(lambda e, i=i: order.append(("n", i)))
                ev.succeed(delay=1.0, priority=NORMAL)
            for i in range(4):
                ev = env.event()
                ev.add_callback(lambda e, i=i: order.append(("u", i)))
                ev.succeed(delay=1.0, priority=URGENT)
            env.run()
            kinds = [k for k, _ in order]
            assert kinds == ["u"] * 4 + ["n"] * 4

    def test_time_still_dominates_salt(self):
        for seed in (1, 2, 3):
            env = Environment(tiebreak_seed=seed)
            order = []
            for i, delay in enumerate((3.0, 1.0, 2.0)):
                env.timeout(delay).add_callback(
                    lambda e, i=i: order.append(i))
            env.run()
            assert order == [1, 2, 0]

    def test_peek_and_run_until_with_salt(self):
        env = Environment(tiebreak_seed=5)
        assert env.peek() == float("inf")
        env.timeout(2.0)
        env.timeout(4.0)
        assert env.peek() == 2.0
        env.run(until=3.0)
        assert env.now == 3.0
        assert env.peek() == 4.0

    def test_splitmix64_is_a_stable_bijective_mix(self):
        from repro.sim.kernel import _splitmix64

        outs = {_splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000  # no collisions over a small domain
        assert _splitmix64(42) == _splitmix64(42)
        assert all(0 <= v < 2 ** 64 for v in outs)
