"""World-level probe attachment."""

import pytest

from repro.experiments.configs import version
from repro.experiments.profiles import SMALL
from repro.experiments.runner import build_world
from repro.sim.probes import probe_world_queues

pytestmark = pytest.mark.slow


def test_probe_world_queues_covers_every_server_queue():
    world = build_world(version("COOP"), SMALL)
    probes = probe_world_queues(world, period=2.0)
    # PRESS exposes main_q and disk_q per server
    assert len(probes) == 2 * len(world.servers)
    world.env.run(until=30.0)
    assert all(len(p.values) > 10 for p in probes)
    # fault-free warm-up: queues exist but nothing is pinned at capacity
    assert max(p.mean(t0=20.0) for p in probes) < 64
