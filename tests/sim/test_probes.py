"""Instrumentation probes."""

import pytest

from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.sim.probes import DiskUtilizationProbe, GaugeProbe, QueueDepthProbe
from repro.sim.store import Store


class TestGaugeProbe:
    def test_samples_on_period(self, env):
        values = iter(range(100))
        probe = GaugeProbe(env, lambda: next(values), period=2.0)
        env.run(until=9.0)
        assert list(probe.times) == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert list(probe.values) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_stats(self, env):
        data = iter([0.0, 10.0, 20.0, 10.0])
        probe = GaugeProbe(env, lambda: next(data), period=1.0)
        env.run(until=3.5)
        assert probe.max() == 20.0
        assert probe.mean() == 10.0
        assert probe.mean(t0=1.0, t1=3.0) == 15.0
        assert probe.time_above(9.0) == pytest.approx(3.0)

    def test_stop(self, env):
        probe = GaugeProbe(env, lambda: 1.0, period=1.0)
        env.run(until=2.5)
        probe.stop()
        env.run(until=10.0)
        assert len(probe.values) == 3

    def test_validation(self, env):
        with pytest.raises(ValueError):
            GaugeProbe(env, lambda: 0.0, period=0.0)

    def test_empty_stats(self, env):
        probe = GaugeProbe(env, lambda: 1.0, period=1.0)
        # no env.run: nothing sampled yet... the bootstrap samples at t=0
        # only once run; check empty accessors beforehand
        assert probe.mean() == 0.0 or probe.mean() == 1.0


class TestQueueDepthProbe:
    def test_tracks_backlog(self, env):
        store = Store(env, capacity=10)
        probe = QueueDepthProbe(env, store, period=1.0)

        def producer():
            for i in range(5):
                yield env.timeout(1.0)
                store.put_nowait(i)

        env.process(producer())
        env.run(until=5.5)
        assert probe.values.max() >= 4


class TestDiskUtilizationProbe:
    def test_busy_disk_near_one(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams(seek_time=0.05, jitter=0.0))
        probe = DiskUtilizationProbe(env, disk, period=1.0)

        def hammer():
            while True:
                sub = disk.submit(27_000)
                yield sub.enqueued
                yield sub.done

        env.process(hammer(), owner=host.os)
        env.run(until=10.0)
        assert probe.mean(t0=2.0) > 0.7

    def test_idle_disk_zero(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams())
        probe = DiskUtilizationProbe(env, disk, period=1.0)
        env.run(until=5.0)
        assert probe.mean() == 0.0
