"""Instrumentation probes."""

import pytest

from repro.hardware.disk import Disk, DiskParams
from repro.hardware.host import Host
from repro.sim.probes import DiskUtilizationProbe, GaugeProbe, QueueDepthProbe
from repro.sim.store import Store


class TestGaugeProbe:
    def test_samples_on_period(self, env):
        values = iter(range(100))
        probe = GaugeProbe(env, lambda: next(values), period=2.0)
        env.run(until=9.0)
        assert list(probe.times) == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert list(probe.values) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_stats(self, env):
        data = iter([0.0, 10.0, 20.0, 10.0])
        probe = GaugeProbe(env, lambda: next(data), period=1.0)
        env.run(until=3.5)
        assert probe.max() == 20.0
        assert probe.mean() == 10.0
        assert probe.mean(t0=1.0, t1=3.0) == 15.0
        assert probe.time_above(9.0) == pytest.approx(3.0)

    def test_stop(self, env):
        probe = GaugeProbe(env, lambda: 1.0, period=1.0)
        env.run(until=2.5)
        probe.stop()
        env.run(until=10.0)
        assert len(probe.values) == 3

    def test_validation(self, env):
        with pytest.raises(ValueError):
            GaugeProbe(env, lambda: 0.0, period=0.0)

    def test_empty_stats(self, env):
        probe = GaugeProbe(env, lambda: 1.0, period=1.0)
        # no env.run: nothing sampled yet... the bootstrap samples at t=0
        # only once run; check empty accessors beforehand
        assert probe.mean() == 0.0 or probe.mean() == 1.0

    def test_mean_window_boundaries(self, env):
        # Samples land at t=0,1,2,3 with values 0,10,20,30; the window is
        # half-open [t0, t1): the t1 sample must be excluded, t0 included.
        data = iter([0.0, 10.0, 20.0, 30.0])
        probe = GaugeProbe(env, lambda: next(data), period=1.0)
        env.run(until=3.5)
        assert probe.mean(t0=1.0, t1=3.0) == 15.0  # samples at 1, 2
        assert probe.mean(t0=1.0, t1=1.0 + 1e-9) == 10.0  # just the t0 sample
        assert probe.mean(t0=3.0) == 30.0  # open-ended right edge
        assert probe.mean(t1=1.0) == 0.0  # open-ended left edge
        assert probe.mean(t0=5.0, t1=9.0) == 0.0  # window past the data

    def test_time_above_threshold_boundaries(self, env):
        data = iter([5.0, 10.0, 15.0, 10.0])
        probe = GaugeProbe(env, lambda: next(data), period=1.0)
        env.run(until=3.5)
        # Strictly above: samples equal to the threshold do not count.
        assert probe.time_above(10.0) == pytest.approx(1.0)
        assert probe.time_above(4.0) == pytest.approx(4.0)
        assert probe.time_above(20.0) == 0.0

    def test_time_above_scales_with_period(self, env):
        data = iter([1.0, 1.0])
        probe = GaugeProbe(env, lambda: next(data), period=5.0)
        env.run(until=6.0)
        assert probe.time_above(0.0) == pytest.approx(10.0)

    def test_time_above_empty(self, env):
        probe = GaugeProbe(env, lambda: 1.0, period=1.0)
        assert probe.time_above(0.0) == 0.0


class TestQueueDepthProbe:
    def test_tracks_backlog(self, env):
        store = Store(env, capacity=10)
        probe = QueueDepthProbe(env, store, period=1.0)

        def producer():
            for i in range(5):
                yield env.timeout(1.0)
                store.put_nowait(i)

        env.process(producer())
        env.run(until=5.5)
        assert probe.values.max() >= 4


class TestDiskUtilizationProbe:
    def test_busy_disk_near_one(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams(seek_time=0.05, jitter=0.0))
        probe = DiskUtilizationProbe(env, disk, period=1.0)

        def hammer():
            while True:
                sub = disk.submit(27_000)
                yield sub.enqueued
                yield sub.done

        env.process(hammer(), owner=host.os)
        env.run(until=10.0)
        assert probe.mean(t0=2.0) > 0.7

    def test_idle_disk_zero(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams())
        probe = DiskUtilizationProbe(env, disk, period=1.0)
        env.run(until=5.0)
        assert probe.mean() == 0.0

    def test_mean_file_size_defaults_to_trace_config(self, env):
        from repro.workload.trace import TraceConfig

        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams())
        probe = DiskUtilizationProbe(env, disk)
        assert probe._mean_file_size == TraceConfig().file_size

    def test_mean_file_size_override_changes_estimate(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams(jitter=0.0))
        small = DiskUtilizationProbe(env, disk, period=1.0, mean_file_size=1)
        big = DiskUtilizationProbe(env, disk, period=1.0,
                                   mean_file_size=10_000_000)

        def hammer():
            while True:
                sub = disk.submit(27_000)
                yield sub.enqueued
                yield sub.done

        env.process(hammer(), owner=host.os)
        env.run(until=10.0)
        # Same op stream, different per-op size assumption: the bigger
        # assumed transfer must imply more estimated busy time.
        assert big.mean(t0=2.0) > small.mean(t0=2.0)

    def test_mean_file_size_validation(self, env):
        host = Host(env, "n0", 0)
        disk = Disk(env, host, 0, DiskParams())
        with pytest.raises(ValueError):
            DiskUtilizationProbe(env, disk, mean_file_size=0)
