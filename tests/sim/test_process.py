"""Process coroutines: lifecycle, interrupts, ownership (freeze/crash)."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.process import KILLED, Interrupt, ProcessOwner
from repro.sim.store import Store


def ticker(env, log, period=1.0):
    while True:
        yield env.timeout(period)
        log.append(env.now)


class TestLifecycle:
    def test_return_value_triggers_process_event(self, env):
        def body():
            yield env.timeout(1.0)
            return "done"

        proc = env.process(body())
        env.run()
        assert proc.triggered and proc.value == "done"

    def test_process_waits_on_process(self, env):
        def child():
            yield env.timeout(2.0)
            return 7

        result = []

        def parent():
            value = yield env.process(child())
            result.append((env.now, value))

        env.process(parent())
        env.run()
        assert result == [(2.0, 7)]

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yielding_non_event_raises(self, env):
        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_fails_process_event(self, env):
        class Boom(Exception):
            pass

        def body():
            yield env.timeout(1.0)
            raise Boom()

        def watcher():
            try:
                yield proc
            except Boom:
                caught.append(True)

        caught = []
        proc = env.process(body())
        env.process(watcher())
        env.run()
        assert caught == [True]

    def test_is_alive(self, env):
        def body():
            yield env.timeout(1.0)

        proc = env.process(body())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive


class TestKill:
    def test_kill_stops_execution(self, env):
        log = []
        proc = env.process(ticker(env, log))
        env.run(until=2.5)
        proc.kill()
        env.run(until=10)
        assert log == [1.0, 2.0]

    def test_kill_triggers_with_sentinel(self, env):
        proc = env.process(ticker(env, []))
        env.run(until=0.5)
        proc.kill()
        assert proc.triggered and proc.value is KILLED

    def test_kill_cancels_queued_store_get(self, env):
        store = Store(env)

        def getter():
            yield store.get()

        proc = env.process(getter())
        env.run(until=1)
        proc.kill()
        store.put("x")
        env.run(until=2)
        assert store.level == 1  # item not consumed by the dead process

    def test_kill_idempotent(self, env):
        proc = env.process(ticker(env, []))
        env.run(until=0.5)
        proc.kill()
        proc.kill()


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def body():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                causes.append((env.now, i.cause))

        proc = env.process(body())
        env.run(until=3)
        proc.interrupt("stop now")
        env.run(until=4)
        assert causes == [(3.0, "stop now")]

    def test_interrupt_dead_process_is_noop(self, env):
        def body():
            yield env.timeout(1)

        proc = env.process(body())
        env.run()
        proc.interrupt("late")  # must not raise
        env.run()

    def test_interrupted_wait_event_is_detached(self, env):
        store = Store(env)

        def body():
            try:
                yield store.get()
            except Interrupt:
                yield env.timeout(50)

        proc = env.process(body())
        env.run(until=1)
        proc.interrupt()
        env.run(until=2)
        store.put("x")
        env.run(until=3)
        assert store.level == 1  # the cancelled get never consumed it
        assert proc.is_alive


class TestOwnership:
    def test_freeze_parks_and_thaw_replays(self, env):
        owner = ProcessOwner()
        log = []
        env.process(ticker(env, log), owner=owner)
        env.run(until=2.5)
        owner.freeze()
        env.run(until=7.5)
        assert log == [1.0, 2.0]
        owner.thaw(env)
        env.run(until=9.9)
        assert log == [1.0, 2.0, 7.5, 8.5, 9.5]

    def test_freeze_preserves_state(self, env):
        owner = ProcessOwner()
        values = []

        def counter():
            n = 0
            while True:
                yield env.timeout(1.0)
                n += 1
                values.append(n)

        env.process(counter(), owner=owner)
        env.run(until=3.5)
        owner.freeze()
        env.run(until=10)
        owner.thaw(env)
        env.run(until=10.5)
        assert values == [1, 2, 3, 4]  # resumed exactly where it left off

    def test_crash_kills_all(self, env):
        owner = ProcessOwner()
        log = []
        env.process(ticker(env, log), owner=owner)
        env.process(ticker(env, log, 0.7), owner=owner)
        env.run(until=1.5)
        owner.crash()
        env.run(until=10)
        assert max(log) <= 1.5
        assert not owner.processes

    def test_crash_drops_parked_deliveries(self, env):
        owner = ProcessOwner()
        log = []
        env.process(ticker(env, log), owner=owner)
        env.run(until=1.5)
        owner.freeze()
        env.run(until=5)
        owner.crash()
        owner.revive()
        env.run(until=10)
        assert log == [1.0]

    def test_freeze_crashed_owner_rejected(self, env):
        owner = ProcessOwner()
        owner.crash()
        with pytest.raises(SimulationError):
            owner.freeze()

    def test_spawn_while_frozen_parks_bootstrap(self, env):
        owner = ProcessOwner()
        owner.freeze()
        log = []
        env.process(ticker(env, log), owner=owner)
        env.run(until=5)
        assert log == []
        owner.thaw(env)
        env.run(until=7.5)
        assert log == [6.0, 7.0]

    def test_refreeze_before_replay(self, env):
        owner = ProcessOwner()
        log = []
        env.process(ticker(env, log), owner=owner)
        env.run(until=1.5)
        owner.freeze()
        env.run(until=3)
        owner.thaw(env)
        owner.freeze()  # immediately refreeze: replay must re-park
        env.run(until=6)
        assert log == [1.0]
        owner.thaw(env)
        env.run(until=8)
        assert len(log) > 1
