"""Property-based tests (hypothesis) for the kernel and stores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.series import ThroughputSeries
from repro.sim.store import Store


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_clock_monotone_and_events_fire_at_their_time(delays):
    env = Environment()
    fired = []
    for d in delays:
        env.timeout(d).add_callback(lambda e, d=d: fired.append((env.now, d)))
    env.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)  # processing order is time order
    for t, d in fired:
        assert t == d


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    items=st.lists(st.integers(), min_size=1, max_size=50),
)
def test_store_conserves_items_and_preserves_order(capacity, items):
    env = Environment()
    store = Store(env, capacity=capacity)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)
            yield env.timeout(0.001)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == items
    assert store.level == 0


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    n_items=st.integers(min_value=1, max_value=30),
)
def test_store_level_never_exceeds_capacity(capacity, n_items):
    env = Environment()
    store = Store(env, capacity=capacity)
    violations = []

    def producer():
        for i in range(n_items):
            yield store.put(i)
            if store.level > capacity:
                violations.append(store.level)

    def consumer():
        for _ in range(n_items):
            yield store.get()
            yield env.timeout(0.01)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert not violations


@settings(max_examples=60, deadline=None)
@given(times=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=200))
def test_series_counts_partition_the_timeline(times):
    series = ThroughputSeries()
    for t in sorted(times):
        series.record(t)
    mid = 5e3
    assert series.count(0.0, mid) + series.count(mid, 1e4 + 1.0) == len(times)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=20),
)
def test_simulation_determinism(seed, n):
    """Same program, same seed => identical event trace."""
    import numpy as np

    def run():
        env = Environment()
        rng = np.random.default_rng(seed)
        log = []
        store = Store(env, capacity=3)

        def producer():
            for i in range(n):
                yield env.timeout(float(rng.exponential(1.0)))
                yield store.put(i)
                log.append(("p", round(env.now, 9), i))

        def consumer():
            for _ in range(n):
                item = yield store.get()
                yield env.timeout(0.5)
                log.append(("c", round(env.now, 9), item))

        env.process(producer())
        env.process(consumer())
        env.run()
        return log

    assert run() == run()
