"""Named RNG streams and time-series recording."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.series import MarkerLog, ThroughputSeries


class TestRng:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_deterministic_across_registries(self):
        a = RngRegistry(7).stream("clients").random(5)
        b = RngRegistry(7).stream("clients").random(5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_new_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        first = reg1.stream("clients").random(3)
        reg2 = RngRegistry(7)
        reg2.stream("something_new").random(100)
        second = reg2.stream("clients").random(3)
        assert np.allclose(first, second)

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(2, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_exponential_mean(self):
        reg = RngRegistry(3)
        draws = [reg.exponential("e", 2.0) for _ in range(4000)]
        assert abs(np.mean(draws) - 2.0) < 0.15

    def test_exponential_validates_mean(self):
        with pytest.raises(ValueError):
            RngRegistry(1).exponential("e", 0.0)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_contains(self):
        reg = RngRegistry(1)
        assert "a" not in reg
        reg.stream("a")
        assert "a" in reg


class TestThroughputSeries:
    def test_count_and_rate(self):
        s = ThroughputSeries()
        for t in (0.5, 1.5, 2.5, 3.5):
            s.record(t)
        assert s.count(1.0, 3.0) == 2
        assert s.mean_rate(0.0, 4.0) == pytest.approx(1.0)

    def test_monotonicity_enforced(self):
        s = ThroughputSeries()
        s.record(2.0)
        with pytest.raises(ValueError):
            s.record(1.0)

    def test_empty_windows(self):
        s = ThroughputSeries()
        assert s.count(0, 10) == 0
        assert s.mean_rate(0, 10) == 0.0
        assert s.mean_rate(5, 5) == 0.0

    def test_bucketize(self):
        s = ThroughputSeries()
        for t in np.arange(0.05, 10.0, 0.1):  # 10 events/second
            s.record(float(t))
        edges, rates = s.bucketize(1.0, 0.0, 10.0)
        assert len(edges) == len(rates) == 10
        assert np.allclose(rates, 10.0)

    def test_bucketize_validates(self):
        s = ThroughputSeries()
        with pytest.raises(ValueError):
            s.bucketize(0.0, 0, 10)
        with pytest.raises(ValueError):
            s.bucketize(1.0, 5, 5)

    def test_count_requires_ordered_window(self):
        s = ThroughputSeries()
        with pytest.raises(ValueError):
            s.count(2, 1)

    def test_bucketize_empty_series_defaults(self):
        s = ThroughputSeries()
        edges, rates = s.bucketize(1.0)
        assert list(edges) == [0.0]
        assert list(rates) == [0.0]

    def test_bucketize_empty_series_explicit_window(self):
        s = ThroughputSeries()
        edges, rates = s.bucketize(2.0, 0.0, 10.0)
        assert len(edges) == 5
        assert np.all(rates == 0.0)

    def test_bucketize_single_event_default_window(self):
        s = ThroughputSeries()
        s.record(3.0)
        edges, rates = s.bucketize(1.0)
        assert edges[0] == 3.0
        assert rates[0] == pytest.approx(1.0)

    def test_bucketize_ragged_last_bin(self):
        # A window that is not a multiple of the bin width still covers
        # every event: the last (partial) bin is kept.
        s = ThroughputSeries()
        for t in (0.5, 1.5, 2.25):
            s.record(t)
        edges, rates = s.bucketize(1.0, 0.0, 2.5)
        assert len(edges) == 3
        assert rates.sum() * 1.0 == pytest.approx(3.0)

    def test_bucketize_window_excluding_all_events(self):
        s = ThroughputSeries()
        s.record(1.0)
        _edges, rates = s.bucketize(1.0, 100.0, 105.0)
        assert np.all(rates == 0.0)


class TestMarkerLog:
    def test_first_and_last(self):
        m = MarkerLog()
        m.mark(3.0, "detected", "a")
        m.mark(1.0, "detected", "b")
        m.mark(2.0, "other")
        assert m.first("detected") == 1.0
        assert m.last("detected") == 3.0
        assert m.first("missing") is None

    def test_all_preserves_payloads(self):
        m = MarkerLog()
        m.mark(1.0, "x", {"k": 1})
        assert m.all("x") == [(1.0, {"k": 1})]

    def test_labels_histogram(self):
        m = MarkerLog()
        m.mark(1, "a")
        m.mark(2, "a")
        m.mark(3, "b")
        assert m.labels() == {"a": 2, "b": 1}
