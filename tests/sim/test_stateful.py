"""Stateful property tests (hypothesis RuleBasedStateMachine)."""

from collections import deque

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.press.cache import CacheDirectory, LruCache
from repro.sim.kernel import Environment
from repro.sim.store import Store, StoreFullError


class StoreMachine(RuleBasedStateMachine):
    """A Store must behave exactly like a bounded deque under the
    non-blocking operations."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.capacity = 5
        self.store = Store(self.env, capacity=self.capacity)
        self.model = deque()
        self.counter = 0

    @rule()
    def put(self):
        self.counter += 1
        if len(self.model) < self.capacity:
            self.store.put_nowait(self.counter)
            self.model.append(self.counter)
        else:
            try:
                self.store.put_nowait(self.counter)
                raise AssertionError("accepted beyond capacity")
            except StoreFullError:
                pass

    @rule()
    def try_put(self):
        self.counter += 1
        accepted = self.store.try_put(self.counter)
        assert accepted == (len(self.model) < self.capacity)
        if accepted:
            self.model.append(self.counter)

    @precondition(lambda self: self.model)
    @rule()
    def get(self):
        assert self.store.get_nowait() == self.model.popleft()

    @precondition(lambda self: self.model)
    @rule()
    def peek(self):
        assert self.store.peek() == self.model[0]

    @rule()
    def clear(self):
        dropped = self.store.clear()
        assert dropped == list(self.model)
        self.model.clear()

    @invariant()
    def level_matches(self):
        assert self.store.level == len(self.model)
        assert self.store.full == (len(self.model) >= self.capacity)


class CacheDirectoryMachine(RuleBasedStateMachine):
    """Directory forward and inverse indices must stay consistent."""

    nodes = st.integers(min_value=0, max_value=4)
    fids = st.integers(min_value=0, max_value=15)

    def __init__(self):
        super().__init__()
        self.directory = CacheDirectory()
        self.model = set()  # {(node, fid)}

    @rule(node=nodes, fid=fids)
    def add(self, node, fid):
        self.directory.add(node, fid)
        self.model.add((node, fid))

    @rule(node=nodes, fid=fids)
    def remove(self, node, fid):
        self.directory.remove(node, fid)
        self.model.discard((node, fid))

    @rule(node=nodes)
    def drop_node(self, node):
        self.directory.drop_node(node)
        self.model = {(n, f) for n, f in self.model if n != node}

    @rule(node=nodes, fid=fids)
    def replace_node(self, node, fid):
        self.directory.replace_node(node, [fid])
        self.model = {(n, f) for n, f in self.model if n != node}
        self.model.add((node, fid))

    @invariant()
    def indices_consistent(self):
        for fid in range(16):
            expected = {n for n, f in self.model if f == fid}
            assert self.directory.holders(fid) == expected
        for node in range(5):
            expected = sorted(f for n, f in self.model if n == node)
            assert self.directory.files_of(node) == expected


class LruMachine(RuleBasedStateMachine):
    """LRU cache vs an ordered-list model."""

    fids = st.integers(min_value=0, max_value=20)

    def __init__(self):
        super().__init__()
        self.capacity = 4
        self.cache = LruCache(self.capacity)
        self.model = []  # LRU .. MRU

    def _touch(self, fid):
        if fid in self.model:
            self.model.remove(fid)
        self.model.append(fid)
        if len(self.model) > self.capacity:
            return self.model.pop(0)
        return None

    @rule(fid=fids)
    def access(self, fid):
        hit = self.cache.lookup(fid)
        assert hit == (fid in self.model)
        if hit:
            self._touch(fid)
        else:
            evicted = self.cache.insert(fid)
            assert evicted == self._touch(fid)

    @rule(fid=fids)
    def remove(self, fid):
        self.cache.remove(fid)
        if fid in self.model:
            self.model.remove(fid)

    @invariant()
    def contents_match(self):
        assert self.cache.contents() == self.model


TestStoreMachine = StoreMachine.TestCase
TestCacheDirectoryMachine = CacheDirectoryMachine.TestCase
TestLruMachine = LruMachine.TestCase

for case in (TestStoreMachine, TestCacheDirectoryMachine, TestLruMachine):
    case.settings = settings(max_examples=40, stateful_step_count=30,
                             deadline=None)
