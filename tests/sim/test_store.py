"""Bounded store semantics: FIFO, blocking, cancellation, teardown."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.store import Store, StoreFullError


class TestBasics:
    def test_put_get_fifo(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_nowait_full_raises(self, env):
        store = Store(env, capacity=1)
        store.put_nowait("a")
        with pytest.raises(StoreFullError):
            store.put_nowait("b")

    def test_try_put(self, env):
        store = Store(env, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert store.level == 1

    def test_get_nowait(self, env):
        store = Store(env)
        store.put_nowait("x")
        assert store.get_nowait() == "x"
        with pytest.raises(SimulationError):
            store.get_nowait()

    def test_peek(self, env):
        store = Store(env)
        store.put_nowait(1)
        store.put_nowait(2)
        assert store.peek() == 1
        assert store.level == 2


class TestBlocking:
    def test_put_blocks_at_capacity(self, env):
        store = Store(env, capacity=2)
        progress = []

        def producer():
            for i in range(4):
                yield store.put(i)
                progress.append((env.now, i))

        def consumer():
            yield env.timeout(10)
            while True:
                yield store.get()
                yield env.timeout(1)

        env.process(producer())
        env.process(consumer())
        env.run(until=20)
        times = dict((i, t) for t, i in progress)
        assert times[0] == 0 and times[1] == 0
        assert times[2] == 10  # unblocked by the first get
        assert times[3] == 11

    def test_get_blocks_until_item(self, env):
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(5.0, "late")]

    def test_backlog_counts_blocked_putters(self, env):
        store = Store(env, capacity=1)

        def producer():
            yield store.put("a")
            yield store.put("b")

        env.process(producer())
        env.run(until=1)
        assert store.level == 1
        assert store.backlog == 2

    def test_put_nowait_respects_queued_putters(self, env):
        store = Store(env, capacity=1)

        def producer():
            yield store.put("a")
            yield store.put("b")

        env.process(producer())
        env.run(until=1)

        def late():
            yield store.get()

        env.process(late())
        env.run(until=2)
        # "b" (queued first) must have been admitted, not a nowait line-jumper
        assert store.peek() == "b"


class TestCancellation:
    def test_get_cancel_leaves_items(self, env):
        store = Store(env)
        get_ev = store.get()
        get_ev.cancel()
        store.put_nowait("x")
        env.run()
        assert not get_ev.triggered
        assert store.level == 1

    def test_put_cancel_withdraws(self, env):
        store = Store(env, capacity=1)
        store.put_nowait("a")
        put_ev = store.put("b")
        put_ev.cancel()
        assert store.get_nowait() == "a"
        env.run()
        assert store.level == 0

    def test_cancel_after_trigger_is_noop(self, env):
        store = Store(env)
        store.put_nowait("x")
        get_ev = store.get()
        assert get_ev.triggered
        get_ev.cancel()
        assert get_ev.value == "x"


class TestTeardown:
    def test_release_putters_unblocks_and_drops(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            yield store.put("dropped")
            done.append(env.now)

        env.process(producer())
        env.run(until=1)
        released = store.release_putters()
        env.run(until=2)
        assert released == 1
        assert done == [1.0]
        assert list(store.items) == ["a"]

    def test_clear_returns_dropped(self, env):
        store = Store(env)
        store.put_nowait(1)
        store.put_nowait(2)
        assert store.clear() == [1, 2]
        assert store.level == 0

    def test_force_put_ignores_capacity(self, env):
        store = Store(env, capacity=1)
        store.put_nowait("a")
        store.force_put("sentinel")
        assert store.level == 2

    def test_force_put_front(self, env):
        store = Store(env)
        store.put_nowait("a")
        store.force_put("first", front=True)
        assert store.get_nowait() == "first"

    def test_force_put_wakes_getter(self, env):
        store = Store(env, capacity=1)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        env.process(consumer())
        env.run(until=1)
        store.force_put("wake")
        env.run(until=2)
        assert got == ["wake"]
