"""Public API surface: everything a downstream user imports must exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.obs",
    "repro.hardware",
    "repro.net",
    "repro.faults",
    "repro.workload",
    "repro.press",
    "repro.ha",
    "repro.core",
    "repro.experiments",
    "repro.parallel",
    "repro.bookstore",
    "repro.auction",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES[1:-1])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_headline_symbols():
    from repro.core import (
        AvailabilityModel,
        QuantifyConfig,
        SevenStageTemplate,
        TemplateFitter,
        quantify_version,
    )
    from repro.experiments import SMALL, VERSIONS, build_world, version
    from repro.faults import FaultKind, table1_catalog
    from repro.ha import PRESS_FAULT_MODEL, FaultModel
    from repro.press import PressServer, bootstrap_cluster

    assert len(VERSIONS) == 13
    assert callable(quantify_version)
    headline = (AvailabilityModel, QuantifyConfig, SevenStageTemplate,
                TemplateFitter, SMALL, build_world, version, FaultKind,
                table1_catalog, PRESS_FAULT_MODEL, FaultModel, PressServer,
                bootstrap_cluster)
    assert all(headline)


def test_version_string():
    import repro

    assert repro.__version__


def test_cli_entrypoint_exists():
    from repro.cli import main

    assert callable(main)
