"""Latency reservoir and percentile queries."""

import numpy as np
import pytest

from repro.workload.stats import LatencyReservoir, RequestStats


class TestReservoir:
    def test_exact_below_capacity(self):
        r = LatencyReservoir(capacity=100)
        for v in range(1, 11):
            r.add(float(v))
        assert r.percentile(50) == pytest.approx(5.5)
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 10.0

    def test_bounded_memory(self):
        r = LatencyReservoir(capacity=64)
        for v in range(10_000):
            r.add(float(v))
        assert len(r) == 64
        assert r.seen == 10_000

    def test_sampling_tracks_distribution(self):
        rng = np.random.default_rng(1)
        r = LatencyReservoir(capacity=2000, seed=2)
        data = rng.exponential(1.0, 50_000)
        for v in data:
            r.add(float(v))
        true_p90 = float(np.percentile(data, 90))
        assert r.percentile(90) == pytest.approx(true_p90, rel=0.15)

    def test_empty(self):
        assert LatencyReservoir().percentile(99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)
        with pytest.raises(ValueError):
            LatencyReservoir().percentile(101)

    def test_deterministic_by_seed(self):
        def fill(seed):
            r = LatencyReservoir(capacity=16, seed=seed)
            for v in range(1000):
                r.add(float(v))
            return sorted(r._samples)

        assert fill(3) == fill(3)


class TestStatsIntegration:
    def test_percentiles_from_successes(self):
        stats = RequestStats()
        for i in range(100):
            stats.record_issue(float(i))
            stats.record_success(float(i) + 0.5, latency=0.01 * (i + 1))
        assert stats.latency_percentile(50) == pytest.approx(0.505, rel=0.05)
        assert stats.latency_percentile(95) > stats.latency_percentile(50)
        assert stats.mean_latency() == pytest.approx(0.505, rel=0.01)
