"""File-backed trace replay."""

import numpy as np
import pytest

from repro.workload.trace import TraceConfig
from repro.workload.tracefile import TraceFile, normalize_sizes, synthesize_trace_file


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        trace = TraceFile([0, 1, 2, 1], [100, 200, 300, 200])
        path = tmp_path / "t.log"
        trace.save(path)
        loaded = TraceFile.load(path)
        assert len(loaded) == 4
        assert [loaded.sample_file() for _ in range(4)] == [0, 1, 2, 1]
        assert loaded.file_size(2) == 300

    def test_replay_wraps(self):
        trace = TraceFile([5, 6], [1, 1])
        assert [trace.sample_file() for _ in range(5)] == [5, 6, 5, 6, 5]

    def test_reset(self):
        trace = TraceFile([1, 2, 3], [1, 1, 1])
        trace.sample_file()
        trace.reset()
        assert trace.sample_file() == 1

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("# header\n\n3 100  # inline\n4 200\n")
        loaded = TraceFile.load(path)
        assert len(loaded) == 2
        assert loaded.file_size(3) == 100

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("3 100 extra\n")
        with pytest.raises(ValueError):
            TraceFile.load(path)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceFile([], [])
        with pytest.raises(ValueError):
            TraceFile([1], [1, 2])
        with pytest.raises(ValueError):
            TraceFile([-1], [1])

    def test_hit_fraction(self):
        trace = TraceFile([0, 0, 0, 1], [1, 1, 1, 1])
        assert trace.hit_fraction(1) == pytest.approx(0.75)
        assert trace.hit_fraction(2) == pytest.approx(1.0)
        assert trace.hit_fraction(0) == 0.0

    def test_out_of_range_size_lookup(self):
        trace = TraceFile([0], [1])
        with pytest.raises(IndexError):
            trace.file_size(5)


class TestNormalizeSizes:
    def test_all_sizes_equalized(self):
        trace = TraceFile([0, 1], [100, 900])
        norm = normalize_sizes(trace, size=27_000)
        assert norm.file_size(0) == norm.file_size(1) == 27_000
        assert len(norm) == 2


class TestSynthesize:
    def test_writes_zipf_log(self, tmp_path):
        path = tmp_path / "synth.log"
        trace = synthesize_trace_file(path, n_requests=5000,
                                      config=TraceConfig(n_files=50), seed=1)
        assert path.exists()
        assert len(trace) == 5000
        # Zipf: the hottest file clearly dominates a mid-rank one.
        counts = np.bincount([trace.sample_file() for _ in range(5000)],
                             minlength=50)
        assert counts[0] > counts[25]

    def test_deterministic_by_seed(self, tmp_path):
        a = synthesize_trace_file(tmp_path / "a.log", 100, seed=7)
        b = synthesize_trace_file(tmp_path / "b.log", 100, seed=7)
        assert [a.sample_file() for _ in range(100)] == \
               [b.sample_file() for _ in range(100)]

    def test_usable_by_client_pool(self, env, tmp_path, rngs):
        """A TraceFile drops into ClientPool in place of SyntheticTrace."""
        from repro.workload.client import ClientConfig, ClientPool, DnsRouter
        from repro.workload.stats import RequestStats
        from tests.workload.test_workload import EchoBackend
        from repro.hardware.host import Host

        trace = synthesize_trace_file(tmp_path / "t.log", 1000,
                                      TraceConfig(n_files=20), seed=3)
        backend = EchoBackend(Host(env, "n0", 0))
        stats = RequestStats()
        ClientPool(env, trace, DnsRouter([backend]), stats,
                   ClientConfig(request_rate=100.0), rngs.stream("c")).start()
        env.run(until=5.0)
        assert stats.succeeded > 300
