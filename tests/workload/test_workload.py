"""Trace generation, stats accounting, client behaviour."""

import numpy as np
import pytest

from repro.hardware.host import Host, NodeService
from repro.workload.client import ClientConfig, ClientPool, DnsRouter
from repro.workload.stats import Outcome, RequestStats
from repro.workload.trace import SyntheticTrace, TraceConfig


class TestTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(n_files=0)
        with pytest.raises(ValueError):
            TraceConfig(file_size=0)
        with pytest.raises(ValueError):
            TraceConfig(zipf_alpha=-1)

    def test_sample_range(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=50), rngs.stream("t"))
        fids = trace.sample_files(10_000)
        assert fids.min() >= 0 and fids.max() < 50

    def test_zipf_skew(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=100, zipf_alpha=1.0), rngs.stream("t"))
        fids = trace.sample_files(50_000)
        counts = np.bincount(fids, minlength=100)
        assert counts[0] > counts[10] > counts[50]

    def test_uniform_when_alpha_zero(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=10, zipf_alpha=0.0), rngs.stream("t"))
        fids = trace.sample_files(50_000)
        counts = np.bincount(fids, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_hit_fraction_monotone_and_bounded(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=100), rngs.stream("t"))
        fractions = [trace.hit_fraction(k) for k in (0, 10, 50, 100, 200)]
        assert fractions[0] == 0.0
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_file_size_constant(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=5, file_size=27_000), rngs.stream("t"))
        assert {trace.file_size(i) for i in range(5)} == {27_000}
        with pytest.raises(IndexError):
            trace.file_size(5)

    def test_sampling_matches_pmf(self, rngs):
        trace = SyntheticTrace(TraceConfig(n_files=20, zipf_alpha=0.9), rngs.stream("t"))
        fids = trace.sample_files(200_000)
        top_share = np.mean(fids == 0)
        assert abs(top_share - trace.hit_fraction(1)) < 0.01


class TestStats:
    def test_counters(self):
        stats = RequestStats()
        stats.record_issue(0.0)
        stats.record_issue(1.0)
        stats.record_success(1.5, latency=1.5)
        stats.record_failure(2.0, Outcome.REQUEST_TIMEOUT)
        assert stats.issued == 2
        assert stats.succeeded == 1 and stats.failed == 1
        assert stats.availability() == 0.5
        assert stats.mean_latency() == 1.5

    def test_record_success_via_failure_rejected(self):
        stats = RequestStats()
        with pytest.raises(ValueError):
            stats.record_failure(0.0, Outcome.SUCCESS)

    def test_window(self):
        stats = RequestStats()
        for t in range(10):
            stats.record_issue(float(t))
            if t % 2 == 0:
                stats.record_success(float(t) + 0.1, 0.1)
        win = stats.window(0.0, 10.0)
        assert win["issued"] == 10 and win["succeeded"] == 5
        assert win["availability"] == 0.5

    def test_empty_availability_is_one(self):
        assert RequestStats().availability() == 1.0


class EchoBackend(NodeService):
    """Responds to everything after a fixed delay."""

    service_name = "press"

    def __init__(self, host, delay=0.01):
        super().__init__(host)
        self.delay = delay
        self.accepted = 0
        self._up = True

    def start(self):
        pass

    @property
    def listening(self):
        return self._up and self.group.alive and self.host.is_up

    def try_accept(self, req):
        if not self.listening:
            return False
        self.accepted += 1

        def respond():
            yield self.env.timeout(self.delay)
            req.respond()

        self.env.process(respond(), owner=self.group)
        return True


@pytest.fixture
def client_world(env, rngs):
    hosts = [Host(env, f"n{i}", i) for i in range(2)]
    backends = [EchoBackend(h) for h in hosts]
    trace = SyntheticTrace(TraceConfig(n_files=10), rngs.stream("trace"))
    stats = RequestStats()
    pool = ClientPool(env, trace, DnsRouter(backends), stats,
                      ClientConfig(request_rate=100.0), rngs.stream("clients"))
    pool.start()
    return hosts, backends, stats, pool


class TestClients:
    def test_round_robin_spreads_load(self, env, client_world):
        hosts, backends, stats, _ = client_world
        env.run(until=5)
        a, b = backends[0].accepted, backends[1].accepted
        assert abs(a - b) <= 1
        assert stats.availability() > 0.99

    def test_rate_approximates_config(self, env, client_world):
        _, _, stats, _ = client_world
        env.run(until=10)
        assert stats.issued == pytest.approx(1000, rel=0.15)

    def test_dead_node_connect_timeouts(self, env, client_world):
        hosts, backends, stats, _ = client_world
        hosts[0].crash()
        env.run(until=10)
        assert stats.outcomes[Outcome.CONNECT_TIMEOUT] > 100

    def test_crashed_app_refused(self, env, client_world):
        hosts, backends, stats, _ = client_world
        backends[0].inject_crash()
        env.run(until=10)
        assert stats.outcomes[Outcome.REFUSED] > 100
        assert stats.outcomes[Outcome.CONNECT_TIMEOUT] == 0

    def test_hung_app_request_timeouts(self, env, client_world):
        hosts, backends, stats, _ = client_world
        backends[0].inject_hang()
        env.run(until=20)
        assert stats.outcomes[Outcome.REQUEST_TIMEOUT] > 50

    def test_no_route_is_connect_timeout(self, env, rngs):
        class NullRouter(DnsRouter):
            def __init__(self):
                pass

            def pick(self, request):
                return None

        trace = SyntheticTrace(TraceConfig(n_files=10), rngs.stream("t"))
        stats = RequestStats()
        ClientPool(env, trace, NullRouter(), stats,
                   ClientConfig(request_rate=50.0), rngs.stream("c")).start()
        env.run(until=10)
        assert stats.outcomes[Outcome.CONNECT_TIMEOUT] > 200

    def test_ramp_reduces_initial_rate(self):
        cfg = ClientConfig(request_rate=100.0, ramp_time=10.0, ramp_start=0.2)
        assert cfg.rate_at(0.0) == pytest.approx(20.0)
        assert cfg.rate_at(5.0) == pytest.approx(60.0)
        assert cfg.rate_at(10.0) == 100.0
        assert cfg.rate_at(50.0) == 100.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            ClientConfig(request_rate=1.0, ramp_time=-1)
        with pytest.raises(ValueError):
            ClientConfig(request_rate=1.0, ramp_start=0.0)

    def test_start_idempotent(self, env, client_world):
        _, _, stats, pool = client_world
        pool.start()
        env.run(until=5)
        assert stats.issued == pytest.approx(500, rel=0.2)

    def test_late_response_after_timeout_not_double_counted(self, env, rngs):
        host = Host(env, "n0", 0)
        backend = EchoBackend(host, delay=10.0)  # beyond the 6 s timeout
        trace = SyntheticTrace(TraceConfig(n_files=10), rngs.stream("t"))
        stats = RequestStats()
        ClientPool(env, trace, DnsRouter([backend]), stats,
                   ClientConfig(request_rate=20.0), rngs.stream("c")).start()
        env.run(until=30)
        assert stats.succeeded == 0
        assert stats.outcomes[Outcome.REQUEST_TIMEOUT] > 100
        assert stats.completed <= stats.issued
